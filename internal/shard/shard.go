// Package shard is the horizontal-scaling tier above the MAC query service:
// it partitions datasets across multiple service instances — in-process
// shards or remote macserver processes — by consistent hashing on the
// dataset id, in the hierarchical-partitioning spirit of the G-tree road
// index (partition once, route cheaply ever after).
//
// A Router owns a fixed set of Backends and a hash ring with virtual nodes.
// Dataset-scoped requests (/v1/datasets/{name}/...) are routed to the shard
// that owns the dataset named in the URL — no body inspection at all; the
// legacy body-addressed /v1/search and /v1/ktcore shims peek the dataset
// from the body before forwarding. /v1/healthz and /v1/stats fan out to
// every shard and aggregate; /v1/batch splits by owning shard, forwards the
// sub-batches concurrently, and merges the per-item results in order. A
// shard that cannot be reached answers its datasets' requests with 502 and
// shows up as down in the aggregated health and stats — the other shards
// keep serving.
//
// Ownership is dynamic: the ring gives every dataset a default owner, and
// the dataset lifecycle (POST/DELETE /v1/datasets/{name}) maintains an
// assignment table layered over it. A create is forwarded to the ring
// owner — or to an explicitly pinned shard when the spec names one — and
// recorded; a delete erases the record. The table optionally persists to
// disk (PersistAssignments / macserver -assignments-file), so a router
// restart keeps routing moved datasets to where they actually live, and it
// re-syncs from a previously-down peer the moment a probe sees it healthy
// again.
//
// Moves are first-class: POST /v1/datasets/{name}/move answers 202 with a
// job resource that copies the dataset to the target shard from a snapshot
// while the source keeps serving, flips the assignment atomically, waits
// for requests already routed to the source to drain, then deletes the
// source copy — a concurrently-querying client sees no 404/502 window at
// any point (see move.go).
//
// Replication layers fault tolerance on top (see replica.go): a dataset's
// assignment is an ordered replica set — primary first, then followers on
// distinct ring owners found by walking the ring past the primary. Reads
// route to the primary and fail over in-router to the next healthy replica
// on a connection error or 502, so a single backend death costs zero non-2xx
// answers; control-plane writes go through the primary and fan to followers
// as replicate jobs that stream a snapshot shard-to-shard. Replicate and
// move jobs are journaled durably next to the assignments file (journal.go),
// so a restarted router resumes or explicitly fails them instead of
// silently forgetting in-flight work.
//
// The Router holds no query state of its own: all caching, admission
// control, and deadline handling stay in the per-shard service tier, so the
// routing layer adds one hash (and, for legacy requests, one body peek) per
// request.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"roadsocial/client"
	"roadsocial/internal/service"
)

// ErrShardDown reports that the shard owning the requested dataset could
// not be reached (HTTP 502).
var ErrShardDown = errors.New("shard: owning shard unreachable")

// Backend is one service instance the router can own datasets on: either a
// Local wrapper around an in-process service.Server or a Remote proxy to a
// macserver base URL. Implementations must be safe for concurrent use.
type Backend interface {
	// Name identifies the shard in health and stats payloads; it is also
	// the shard's identity on the hash ring.
	Name() string
	// ServeAPI forwards one /v1 API request to the shard.
	ServeAPI(w http.ResponseWriter, r *http.Request)
	// Stats snapshots the shard's service counters; an error marks the
	// shard down.
	Stats() (service.Stats, error)
	// Datasets lists the shard's registered datasets; an error marks the
	// shard down.
	Datasets() ([]string, error)
}

// Local is an in-process shard: a service.Server sharing the router's
// process.
type Local struct {
	name string
	srv  *service.Server
	h    http.Handler
}

// NewLocal wraps an in-process server as a shard backend.
func NewLocal(name string, srv *service.Server) *Local {
	return &Local{name: name, srv: srv, h: srv.Handler()}
}

// Name implements Backend.
func (b *Local) Name() string { return b.name }

// Server exposes the wrapped server (dataset registration happens on it).
func (b *Local) Server() *service.Server { return b.srv }

// ServeAPI implements Backend by dispatching to the server's handler.
func (b *Local) ServeAPI(w http.ResponseWriter, r *http.Request) { b.h.ServeHTTP(w, r) }

// Stats implements Backend.
func (b *Local) Stats() (service.Stats, error) { return b.srv.Stats(), nil }

// Datasets implements Backend.
func (b *Local) Datasets() ([]string, error) { return b.srv.Datasets(), nil }

// Remote is a shard served by another macserver process, reached over HTTP.
// Typed probes (stats, health) go through the public client SDK; the query
// path streams the request through verbatim.
type Remote struct {
	name  string
	base  string // e.g. "http://10.0.0.7:8080", no trailing slash
	hc    *http.Client
	api   *client.Client
	token string
}

// RemoteOption configures a Remote backend.
type RemoteOption func(*Remote)

// WithToken makes the backend attach "Authorization: Bearer <token>" to
// every call it originates (probes, and proxied requests that do not
// already carry a token) — for peer macservers started with -auth-token.
func WithToken(token string) RemoteOption { return func(b *Remote) { b.token = token } }

// NewRemote creates a proxy backend for a macserver at baseURL. A nil
// client selects one with no overall timeout: the per-request deadline
// lives in the owning shard (which may allow minutes), and a proxied
// request is additionally canceled through its own context when the
// originating client disconnects. Health and stats probes use a short
// per-call timeout of their own.
func NewRemote(name, baseURL string, hc *http.Client, opts ...RemoteOption) *Remote {
	if hc == nil {
		hc = &http.Client{}
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	b := &Remote{name: name, base: baseURL, hc: hc}
	for _, o := range opts {
		o(b)
	}
	// Probes are health checks: they must observe a down shard, not paper
	// over it, so the SDK-level 502 retry is disabled.
	b.api = client.New(baseURL, client.WithHTTPClient(hc), client.WithToken(b.token), client.WithRetries(0))
	return b
}

// probeTimeout bounds the health and stats fan-out calls to a down shard.
const probeTimeout = 10 * time.Second

// Name implements Backend.
func (b *Remote) Name() string { return b.name }

// ServeAPI implements Backend by replaying the request against the remote
// shard and copying its response back verbatim. Transport failures answer
// 502: the dataset's owner is down, which is not the client's fault and not
// this process's either.
func (b *Remote) ServeAPI(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.base+r.URL.EscapedPath(), r.Body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if auth := r.Header.Get("Authorization"); auth != "" {
		req.Header.Set("Authorization", auth)
	} else if b.token != "" {
		req.Header.Set("Authorization", "Bearer "+b.token)
	}
	if rid := r.Header.Get(client.HeaderRequestID); rid != "" {
		// Propagate the request ID so the leaf's log record carries the same
		// ID the edge minted — one grep follows the request across tiers.
		req.Header.Set(client.HeaderRequestID, rid)
	}
	if lid := r.Header.Get(client.HeaderLastEventID); lid != "" {
		// The SSE resume cursor must survive the proxy hop, or a subscriber
		// reconnecting after a failover silently loses its ring replay.
		req.Header.Set(client.HeaderLastEventID, lid)
	}
	if r.Header.Get(service.HeaderInternal) != "" {
		// Router-originated requests (standing-query registration mirrors)
		// carry the internal marker that lets the leaf accept a pinned query
		// ID. Client-supplied copies never reach here: the routing layer
		// strips the header from inbound requests before forwarding.
		req.Header.Set(service.HeaderInternal, "1")
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("%w: %s (%v)", ErrShardDown, b.name, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	var dst io.Writer = w
	if f, ok := w.(http.Flusher); ok && strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		// An SSE stream proxied through the router must reach the subscriber
		// event by event, not when some buffer fills: flush the headers now
		// and after every chunk the upstream sends.
		f.Flush()
		dst = flushWriter{w: w, f: f}
	}
	if _, err := io.Copy(dst, resp.Body); err != nil {
		// The upstream connection died mid-body. The status line is already
		// out, so nothing can be un-sent here — but a failover-aware caller
		// recording the response must learn the body is truncated, or it
		// would replay a partial 200 to the client as if it were complete.
		if sink, ok := w.(interface{ proxyFailed(error) }); ok {
			sink.proxyFailed(err)
		}
	}
}

// flushWriter flushes after every write, so proxied event streams reach the
// subscriber as the upstream emits them.
type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.f.Flush()
	return n, err
}

// Stats implements Backend through the SDK, which normalizes the leaf
// service shape and the router shape (a peer may itself be a routing tier)
// to one struct.
func (b *Remote) Stats() (service.Stats, error) {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	st, err := b.api.Stats(ctx)
	if err != nil {
		return service.Stats{}, fmt.Errorf("%w: %s (%v)", ErrShardDown, b.name, err)
	}
	return *st, nil
}

// Datasets implements Backend via the remote health endpoint; the SDK
// unions per-shard dataset lists when the peer is itself a router.
func (b *Remote) Datasets() ([]string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	h, err := b.api.Health(ctx)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrShardDown, b.name, err)
	}
	sort.Strings(h.Datasets)
	return h.Datasets, nil
}

// defaultVirtualNodes spreads each backend over this many ring points, which
// keeps the dataset load imbalance across shards within a few percent.
const defaultVirtualNodes = 64

// ringPoint is one virtual node: a hash position owned by a backend.
type ringPoint struct {
	hash uint64
	idx  int
}

// Router partitions datasets over backends by consistent hashing, layers a
// mutable dataset-assignment table over the ring (maintained by the dataset
// lifecycle and the move jobs), and serves the shard-aware /v1 API. Safe
// for concurrent use.
type Router struct {
	backends []Backend
	byName   map[string]int
	ring     []ringPoint
	jobs     *service.Jobs

	// replication is the default replica count for datasets created without
	// an explicit spec.Replication. Set through SetReplication before the
	// router serves traffic; 1 (the zero-config default) means no followers.
	replication int

	// down[i] remembers that backend i failed its last probe (or answered a
	// read with a transport-level 502); the first successful probe afterwards
	// re-syncs its datasets into the assignment table and re-syncs replicas
	// (a peer that restarted during a router outage would otherwise silently
	// lose its off-ring datasets from the table, and a restarted-empty peer
	// needs its follower copies restored).
	down []atomic.Bool

	// probes[i] is backend i's probe bookkeeping for the health payload:
	// when it was last probed and how many consecutive probes have failed.
	probes []probeState

	// failovers counts reads answered by a non-primary replica after the
	// primary failed mid-request; drainTimeouts counts moves whose source
	// drain hit the fail-safe; replicaSyncs counts replicate jobs submitted
	// to copy datasets onto followers. All surface in /v1/stats totals and
	// as router-level /metrics counters.
	failovers     atomic.Int64
	drainTimeouts atomic.Int64
	replicaSyncs  atomic.Int64
	// staleMarked counts replica copies ever marked stale by a failed
	// follower mutation forward — a monotone divergence signal for alerting,
	// alongside the current stale set in Stats.StaleReplicas.
	staleMarked atomic.Int64

	journal *jobJournal // nil until EnableJobJournal

	mu sync.RWMutex
	// assign maps dataset -> ordered replica set (primary first). A dataset
	// absent from the table lives unreplicated on its ring owner.
	assign map[string][]int
	// assignGen increments on every assignment flip (pin/unpin/cutover).
	// Background reconciles snapshot it before fanning out and abort their
	// re-pins when it moved meanwhile: their dataset lists are stale the
	// moment any assignment flips, and acting on them could resurrect a pin
	// a concurrent move's cutover just replaced.
	assignGen uint64
	moving    map[string]bool
	syncing   map[string]bool // datasets with a replicate job in flight
	// stale maps dataset -> backend indices whose replica copy may have
	// diverged from the primary (a follower mutation forward failed). A
	// stale replica is excluded from read failover, skipped by further
	// mutation forwards, and never rotated into the primary slot; only a
	// snapshot re-copy (replicate job) clears the mark — a later mutation
	// landing cleanly on a diverged copy would not heal the divergence.
	stale       map[string]map[int]bool
	persistPath string // when non-empty, assign is mirrored to this file
	// inflight counts requests routed to (dataset, backend) that have not
	// returned yet; a move drains the source's count after the cutover so
	// the delete can never race a request routed before the flip.
	inflight map[routeKey]*atomic.Int64
}

// probeState is one backend's probe bookkeeping (atomics: probes fan out
// concurrently).
type probeState struct {
	lastUnixNano atomic.Int64 // 0 = never probed
	consecFails  atomic.Int64
}

// routeKey identifies one (dataset, backend) routing decision.
type routeKey struct {
	name string
	idx  int
}

// NewRouter builds a router over the backends with vnodes virtual nodes per
// backend (<= 0 selects the default). Backend names must be unique: the
// name is the shard's position generator on the ring, so two shards sharing
// a name would own identical points.
func NewRouter(backends []Backend, vnodes int) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("shard: no backends")
	}
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	byName := make(map[string]int, len(backends))
	ring := make([]ringPoint, 0, len(backends)*vnodes)
	for i, b := range backends {
		if _, dup := byName[b.Name()]; dup {
			return nil, fmt.Errorf("shard: duplicate backend name %q", b.Name())
		}
		byName[b.Name()] = i
		for v := 0; v < vnodes; v++ {
			ring = append(ring, ringPoint{hash: ringHash(b.Name() + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].idx < ring[j].idx
	})
	return &Router{
		backends:    backends,
		byName:      byName,
		ring:        ring,
		jobs:        service.NewJobs(0),
		replication: 1,
		down:        make([]atomic.Bool, len(backends)),
		probes:      make([]probeState, len(backends)),
		assign:      make(map[string][]int),
		moving:      make(map[string]bool),
		syncing:     make(map[string]bool),
		stale:       make(map[string]map[int]bool),
		inflight:    make(map[routeKey]*atomic.Int64),
	}, nil
}

// SetReplication sets the default replica count for datasets whose spec does
// not choose one, clamped to [1, number of backends]. Call before serving
// traffic (cmd/macserver wires -replication here); it does not retrofit
// replicas onto datasets already assigned.
func (rt *Router) SetReplication(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(rt.backends) {
		n = len(rt.backends)
	}
	rt.mu.Lock()
	rt.replication = n
	rt.mu.Unlock()
}

// ringHash is 64-bit FNV-1a followed by a murmur-style finalizer: stable
// across processes and Go versions, so a router fleet and the loader that
// partitioned the datasets always agree on ownership. The finalizer
// matters — raw FNV of short, similar strings ("shard-0#1", "shard-0#2")
// clusters in a narrow band of the 64-bit space, which would collapse the
// ring onto one shard.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ringOwnerIndex returns the ring's default owner for a dataset: the first
// ring point at or clockwise after the dataset's hash.
func (rt *Router) ringOwnerIndex(dataset string) int {
	h := ringHash(dataset)
	i := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= h })
	if i == len(rt.ring) {
		i = 0
	}
	return rt.ring[i].idx
}

// ringReplicas returns up to n distinct backends for a dataset by walking
// the ring clockwise from the dataset's hash: the first distinct owner is
// the ring owner, later ones skip vnodes of backends already chosen. The
// walk is deterministic, so every router over the same backends computes the
// same replica placement.
func (rt *Router) ringReplicas(dataset string, n int) []int {
	if n > len(rt.backends) {
		n = len(rt.backends)
	}
	if n < 1 {
		n = 1
	}
	h := ringHash(dataset)
	start := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for j := 0; j < len(rt.ring) && len(out) < n; j++ {
		p := rt.ring[(start+j)%len(rt.ring)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}

// OwnerIndex returns the index of the backend owning a dataset (the replica
// set's primary): the pinned assignment when the lifecycle recorded one,
// otherwise the ring owner.
func (rt *Router) OwnerIndex(dataset string) int {
	rt.mu.RLock()
	set, pinned := rt.assign[dataset]
	rt.mu.RUnlock()
	if pinned {
		return set[0]
	}
	return rt.ringOwnerIndex(dataset)
}

// replicaSetFor returns the dataset's ordered replica set, primary first:
// the recorded assignment when the lifecycle pinned one, otherwise a ring
// walk at the router's default replication. The result is a copy.
func (rt *Router) replicaSetFor(dataset string) []int {
	rt.mu.RLock()
	set, pinned := rt.assign[dataset]
	if pinned {
		set = append([]int(nil), set...)
	}
	n := rt.replication
	rt.mu.RUnlock()
	if pinned {
		return set
	}
	return rt.ringReplicas(dataset, n)
}

// readCandidates orders a dataset's replicas for the read path: the replica
// set with down-marked backends moved to the back (order otherwise
// preserved, so a healthy fleet always reads from the primary), and
// stale-marked replicas excluded outright — a diverged copy answering a
// failover read would silently flip the client between histories. A
// down-marked backend stays a candidate (the flag is a hint, not a
// verdict); a stale mark is a verdict, cleared only by a re-sync. Only if
// every member is stale does the set pass through unfiltered, so the route
// still answers something rather than nothing.
func (rt *Router) readCandidates(dataset string) []int {
	set := rt.replicaSetFor(dataset)
	if len(set) == 1 {
		return set
	}
	healthy := make([]int, 0, len(set))
	var unhealthy []int
	for _, i := range set {
		switch {
		case rt.isReplicaStale(dataset, i):
		case rt.down[i].Load():
			unhealthy = append(unhealthy, i)
		default:
			healthy = append(healthy, i)
		}
	}
	out := append(healthy, unhealthy...)
	if len(out) == 0 {
		return set
	}
	return out
}

// markReplicaStale records that backend idx's copy of the dataset may have
// diverged from the primary. Idempotent; the counter moves once per mark.
func (rt *Router) markReplicaStale(dataset string, idx int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m := rt.stale[dataset]
	if m == nil {
		m = make(map[int]bool)
		rt.stale[dataset] = m
	}
	if !m[idx] {
		m[idx] = true
		rt.staleMarked.Add(1)
	}
}

// clearReplicaStale removes a stale mark after a successful snapshot
// re-copy brought the replica back in line with the primary.
func (rt *Router) clearReplicaStale(dataset string, idx int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if m := rt.stale[dataset]; m != nil {
		delete(m, idx)
		if len(m) == 0 {
			delete(rt.stale, dataset)
		}
	}
}

// isReplicaStale reports whether backend idx's copy of the dataset carries
// a stale mark.
func (rt *Router) isReplicaStale(dataset string, idx int) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.stale[dataset][idx]
}

// staleReplicaNames snapshots the stale set as dataset -> shard names for
// the stats payload; nil when nothing is marked.
func (rt *Router) staleReplicaNames() map[string][]string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if len(rt.stale) == 0 {
		return nil
	}
	out := make(map[string][]string, len(rt.stale))
	for ds, m := range rt.stale {
		names := make([]string, 0, len(m))
		for idx := range m {
			names = append(names, rt.backends[idx].Name())
		}
		sort.Strings(names)
		out[ds] = names
	}
	return out
}

// Owner returns the backend owning a dataset.
func (rt *Router) Owner(dataset string) Backend {
	return rt.backends[rt.OwnerIndex(dataset)]
}

// Backends returns the router's shards in registration order. Callers must
// not mutate the result.
func (rt *Router) Backends() []Backend { return rt.backends }

// setReplicasLocked records a dataset's ordered replica set (primary first)
// in the assignment table. A single-member set equal to the ring owner needs
// no record; everything else is pinned. When persistence is enabled, the
// table is mirrored to disk in the same critical section — the flip a client
// observes and the flip a restart recovers are the same write. Every call
// bumps the assignment generation (see assignGen). Caller holds rt.mu.
func (rt *Router) setReplicasLocked(dataset string, set []int) {
	rt.assignGen++
	if len(set) == 1 && set[0] == rt.ringOwnerIndex(dataset) {
		delete(rt.assign, dataset)
	} else {
		rt.assign[dataset] = append([]int(nil), set...)
	}
	rt.saveAssignmentsLocked()
}

// pinSet records a dataset's ordered replica set under the lock.
func (rt *Router) pinSet(dataset string, set []int) {
	rt.mu.Lock()
	rt.setReplicasLocked(dataset, set)
	rt.mu.Unlock()
}

// pin records a single-owner assignment (no followers).
func (rt *Router) pin(dataset string, idx int) { rt.pinSet(dataset, []int{idx}) }

func (rt *Router) unpin(dataset string) {
	rt.mu.Lock()
	rt.assignGen++
	delete(rt.assign, dataset)
	delete(rt.stale, dataset) // the dataset is gone; so is its divergence
	rt.saveAssignmentsLocked()
	rt.mu.Unlock()
}

// trackRoute registers a request routed to (dataset, idx) in the in-flight
// table; the returned done must be called when the forwarded request
// settles. Moves use the table to drain the source after a cutover — and
// because failover attempts register against the backend they actually hit,
// the drain count stays exact under failover too.
func (rt *Router) trackRoute(dataset string, idx int) (done func()) {
	key := routeKey{name: dataset, idx: idx}
	rt.mu.Lock()
	ctr := rt.inflight[key]
	if ctr == nil {
		ctr = new(atomic.Int64)
		rt.inflight[key] = ctr
	}
	ctr.Add(1)
	rt.mu.Unlock()
	return func() {
		if ctr.Add(-1) != 0 {
			return
		}
		// Last one out removes the entry — the table tracks client-supplied
		// names, so it must not grow with every dataset ever asked about.
		// The re-check under the lock keeps a concurrent trackRoute (which
		// may have incremented this same counter) safe.
		rt.mu.Lock()
		if cur, ok := rt.inflight[key]; ok && cur == ctr && cur.Load() == 0 {
			delete(rt.inflight, key)
		}
		rt.mu.Unlock()
	}
}

// routedInFlight reports how many requests routed to (dataset, idx) are
// still outstanding.
func (rt *Router) routedInFlight(dataset string, idx int) int64 {
	rt.mu.RLock()
	ctr := rt.inflight[routeKey{name: dataset, idx: idx}]
	rt.mu.RUnlock()
	if ctr == nil {
		return 0
	}
	return ctr.Load()
}

// SyncAssignments reconciles the assignment table with the backends'
// actual dataset lists. A routing tier calls this at startup
// (cmd/macserver -peers does) — otherwise datasets moved before the
// restart would route to their ring owner and 404 there — and again
// whenever a probe sees a previously-down backend healthy.
//
// The reconcile rule is deliberately conservative: a dataset whose
// *current* owner (assignment or ring) actually holds it is left alone —
// sync recovers lost knowledge, it never overrides working routing. Only
// a dataset whose current owner does not hold it is re-pinned, to the
// ring owner if that shard holds a copy, else the lowest-indexed holder
// (deterministic across concurrent syncs); followers in the replica set are
// preserved. A stale duplicate copy — e.g. one retained by a move whose
// drain timed out — therefore can never steal routing from the live copy.
// Unreachable backends are skipped and marked down; datasets mid-move are
// left to the move job. It returns the number of re-pins applied.
//
// The dataset lists are a snapshot: any assignment flip that lands while
// they are being gathered (a move's cutover, a concurrent create) makes
// conclusions drawn from them stale — a cutover could complete between the
// fetch and the re-pin, and the re-pin would resurrect the source the move
// just drained. The assignment generation guards that window: the whole
// batch of re-pins applies only if no flip happened since the fetch began,
// and is otherwise discarded (the next probe interval retries with fresh
// lists).
func (rt *Router) SyncAssignments() int {
	rt.mu.RLock()
	startGen := rt.assignGen
	rt.mu.RUnlock()

	lists := make([][]string, len(rt.backends))
	rt.fanOut(func(i int, b Backend) {
		ds, err := b.Datasets()
		rt.recordProbe(i, err)
		rt.down[i].Store(err != nil)
		if err != nil {
			return
		}
		lists[i] = ds
	})

	holders := make(map[string][]int) // dataset -> backend indices holding it
	for i, ds := range lists {
		for _, d := range ds {
			holders[d] = append(holders[d], i)
		}
	}
	type rePin struct {
		name string
		set  []int
	}
	var plans []rePin
	for d, on := range holders {
		if rt.isMoving(d) {
			continue
		}
		set := rt.replicaSetFor(d)
		cur := set[0]
		if lists[cur] != nil && contains(lists[cur], d) {
			continue // current routing works; never override it
		}
		if rt.down[cur].Load() && lists[cur] == nil {
			// The owner is unreachable, not provably empty: re-pinning now
			// could strand the authoritative copy when it comes back.
			continue
		}
		best := on[0]
		ring := rt.ringOwnerIndex(d)
		if contains(lists[ring], d) {
			best = ring
		}
		if best == cur {
			continue
		}
		// Promote the holder to primary, keep the other members (including
		// the demoted ex-primary) as followers so a later replica sync can
		// restore their copies.
		ns := []int{best}
		for _, i := range set {
			if i != best {
				ns = append(ns, i)
			}
		}
		plans = append(plans, rePin{name: d, set: ns})
	}

	pins := 0
	rt.mu.Lock()
	if rt.assignGen == startGen {
		for _, p := range plans {
			if rt.moving[p.name] {
				continue
			}
			rt.setReplicasLocked(p.name, p.set)
			pins++
		}
	}
	rt.mu.Unlock()
	return pins
}

func contains(ds []string, name string) bool {
	for _, d := range ds {
		if d == name {
			return true
		}
	}
	return false
}

// recordProbe updates backend i's probe bookkeeping (timestamp and
// consecutive-failure count) without touching the down flag or triggering
// reconciles — every probe path feeds it.
func (rt *Router) recordProbe(i int, err error) {
	rt.probes[i].lastUnixNano.Store(time.Now().UnixNano())
	if err != nil {
		rt.probes[i].consecFails.Add(1)
	} else {
		rt.probes[i].consecFails.Store(0)
	}
}

// noteProbe records a probe outcome for backend i. On a down→up transition
// a full reconcile runs: a peer that came back after an outage may hold
// off-ring datasets this router has never seen pinned, and the reconcile
// (unlike a single-backend view) knows whether the current owner of each
// one actually holds it. Replicas are re-synced too: a peer that restarted
// empty needs its follower copies streamed back.
func (rt *Router) noteProbe(i int, err error) {
	rt.recordProbe(i, err)
	if err != nil {
		rt.down[i].Store(true)
		return
	}
	if rt.down[i].Swap(false) {
		rt.SyncAssignments()
		rt.SyncReplicas()
	}
}

// markBackendDown flags a backend the read path just saw fail at the
// transport level, so later reads prefer its peers until a probe sees it
// healthy again.
func (rt *Router) markBackendDown(i int) { rt.down[i].Store(true) }

// assignmentsFile is the on-disk form of the assignment table: dataset →
// ordered replica set of backend names, primary first (names survive
// reordering of the backend slice across restarts; indexes would not).
// Version 1 files carried a single backend name per dataset; they load as
// single-member sets.
type assignmentsFile struct {
	Version     int                 `json:"version"`
	Assignments map[string]string   `json:"assignments,omitempty"` // v1
	Replicas    map[string][]string `json:"replicas,omitempty"`    // v2
}

// PersistAssignments enables assignment-table persistence: the file at
// path (if present) is loaded into the table — entries naming unknown
// backends are dropped — and every later pin/unpin/move rewrites it
// atomically (temp file + rename). Call before serving traffic. It returns
// how many assignments the file contributed.
func (rt *Router) PersistAssignments(path string) (int, error) {
	data, err := os.ReadFile(path)
	loaded := 0
	if err == nil {
		var af assignmentsFile
		if err := json.Unmarshal(data, &af); err != nil {
			return 0, fmt.Errorf("shard: assignments file %s: %w", path, err)
		}
		rt.mu.Lock()
		for ds, name := range af.Assignments { // v1: single owner
			if idx, ok := rt.byName[name]; ok && idx != rt.ringOwnerIndex(ds) {
				rt.assign[ds] = []int{idx}
				loaded++
			}
		}
		for ds, names := range af.Replicas { // v2: ordered replica set
			var set []int
			for _, name := range names {
				if idx, ok := rt.byName[name]; ok && !containsInt(set, idx) {
					set = append(set, idx)
				}
			}
			if len(set) == 0 || (len(set) == 1 && set[0] == rt.ringOwnerIndex(ds)) {
				continue
			}
			rt.assign[ds] = set
			loaded++
		}
		rt.mu.Unlock()
	} else if !errors.Is(err, os.ErrNotExist) {
		return 0, err
	}
	rt.mu.Lock()
	rt.persistPath = path
	rt.saveAssignmentsLocked()
	rt.mu.Unlock()
	return loaded, nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// saveAssignmentsLocked mirrors the table to disk when persistence is on.
// Caller holds rt.mu. Write failures are swallowed: routing must not start
// failing because a disk did, and the next mutation retries.
func (rt *Router) saveAssignmentsLocked() {
	if rt.persistPath == "" {
		return
	}
	af := assignmentsFile{Version: 2, Replicas: make(map[string][]string, len(rt.assign))}
	for ds, set := range rt.assign {
		names := make([]string, len(set))
		for i, idx := range set {
			names[i] = rt.backends[idx].Name()
		}
		af.Replicas[ds] = names
	}
	data, err := json.MarshalIndent(af, "", "  ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(rt.persistPath), ".assignments-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err == nil && tmp.Close() == nil {
		_ = os.Rename(tmp.Name(), rt.persistPath)
	} else {
		tmp.Close()
		_ = os.Remove(tmp.Name())
	}
}

// Handler returns the shard-aware HTTP API: dataset-scoped routes go to the
// owning shard by URL, the legacy body-addressed shims by body peek, batch
// splits across shards, healthz/stats fan out to every shard, and the
// control plane — async creates, snapshot export/import, and moves — runs
// as router-level job resources.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets/{name}/search", rt.routeDataset)
	mux.HandleFunc("POST /v1/datasets/{name}/ktcore", rt.routeDataset)
	mux.HandleFunc("GET /v1/datasets/{name}/hotkeys", rt.routeDataset)
	mux.HandleFunc("POST /v1/datasets/{name}/edges", rt.routeMutate)
	mux.HandleFunc("DELETE /v1/datasets/{name}/edges", rt.routeMutate)
	mux.HandleFunc("GET /v1/datasets/{name}/snapshot", rt.routeSnapshotGet)
	mux.HandleFunc("POST /v1/datasets/{name}/queries", rt.serveCreateQuery)
	mux.HandleFunc("GET /v1/datasets/{name}/queries", rt.routeDataset)
	mux.HandleFunc("GET /v1/datasets/{name}/queries/{id}", rt.routeDataset)
	mux.HandleFunc("DELETE /v1/datasets/{name}/queries/{id}", rt.serveDeleteQuery)
	mux.HandleFunc("GET /v1/datasets/{name}/queries/{id}/events", rt.routeQueryEvents)
	mux.HandleFunc("PUT /v1/datasets/{name}/snapshot", rt.serveRestoreSnapshot)
	mux.HandleFunc("POST /v1/datasets/{name}/move", rt.serveMoveDataset)
	mux.HandleFunc("POST /v1/datasets/{name}", rt.serveCreateDataset)
	mux.HandleFunc("DELETE /v1/datasets/{name}", rt.serveDeleteDataset)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.serveGetJob)
	mux.HandleFunc("GET /v1/jobs", rt.serveListJobs)
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.serveCancelJob)
	mux.HandleFunc("POST /v1/batch", rt.serveBatch)
	mux.HandleFunc("POST /v1/search", rt.routeLegacy)
	mux.HandleFunc("POST /v1/ktcore", rt.routeLegacy)
	mux.HandleFunc("GET /v1/healthz", rt.serveHealthz)
	mux.HandleFunc("GET /v1/stats", rt.serveStats)
	mux.HandleFunc("GET /metrics", rt.serveMetrics)
	return mux
}

// routeDataset hands a dataset-scoped read (search, ktcore, hotkeys) to the
// dataset's primary, failing over in-router to the next replica when the
// primary fails at the transport level. The body is buffered (bounded by
// MaxRequestBody) so a failover attempt can replay it.
func (rt *Router) routeDataset(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil && r.Method != http.MethodGet {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxRequestBody))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	rt.routeRead(w, r, r.PathValue("name"), body)
}

// routeMutate hands a mutation batch to the dataset's primary and, on
// success, replays the same body against each follower so replica copies
// converge. Unlike reads there is no failover — a write answered by a
// follower while the primary is alive would fork the dataset's history —
// and a mid-move dataset rejects writes outright (the snapshot being copied
// would silently miss them).
func (rt *Router) routeMutate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if rt.isMoving(name) {
		writeError(w, http.StatusConflict, fmt.Errorf("dataset %q is mid-move; retry shortly", name))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	set := rt.replicaSetFor(name)
	path := "/v1/datasets/" + name + "/edges"
	auth := r.Header.Get("Authorization")
	r.Body = io.NopCloser(bytes.NewReader(body))
	rec := newRecorder()
	rt.backends[set[0]].ServeAPI(rec, r)
	if rec.code/100 == 2 {
		resync := false
		for _, f := range set[1:] {
			if rt.isReplicaStale(name, f) {
				// Already diverged: applying later batches to a diverged copy
				// cannot heal it (and may fail on state it never reached);
				// the pending re-sync brings it fully current instead.
				resync = true
				continue
			}
			if _, err := rt.forward(f, r.Method, path, bytes.NewReader(body), auth, "application/json"); err != nil {
				// A follower that missed one batch has diverged permanently
				// until re-synced: mark it so reads never fail over onto it
				// and a snapshot re-copy is scheduled, rather than silently
				// serving a forked history whenever the primary is unhealthy.
				rt.markReplicaStale(name, f)
				resync = true
				slog.Warn("follower mutation failed; replica marked stale and excluded from reads until re-synced",
					"dataset", name, "shard", rt.backends[f].Name(), "err", err)
			}
		}
		if resync {
			rt.submitReplicate(name, auth)
		}
	}
	rec.replay(w)
}

// routeSnapshotGet streams a snapshot export from the first healthy replica.
// Unlike the small-bodied reads, a snapshot cannot go through the buffering
// failover path (the recorder would hold the whole dataset in router
// memory), so the route picks one replica up front and streams through.
func (rt *Router) routeSnapshotGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	idx := rt.readCandidates(name)[0]
	done := rt.trackRoute(name, idx)
	defer done()
	rt.backends[idx].ServeAPI(w, r)
}

// routeLegacy is the compat shim for the body-addressed endpoints: peek the
// dataset from the request body and forward under the original URL (the
// shard service keeps its own legacy shims, so the response is
// byte-identical to the pre-resource API). Failover applies like on the
// dataset-scoped routes.
func (rt *Router) routeLegacy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var peek struct {
		Dataset string `json:"dataset"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if peek.Dataset == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing dataset"))
		return
	}
	rt.routeRead(w, r, peek.Dataset, body)
}

// routeRead forwards a read to the dataset's replicas in candidate order:
// primary first, then each follower, skipping ahead whenever an attempt
// fails at the transport level (a 502, or a response that died mid-body).
// The response is captured in a recorder per attempt, so nothing reaches
// the client until one replica has answered in full — a mid-body connection
// loss on the primary is invisible to the client rather than a truncated
// 200. An answer served by a non-primary replica carries the X-Failed-Over
// header naming the shard that answered.
//
// A 404 from a follower after an earlier transport failure is treated as a
// failed attempt, not an answer: the replica set says the follower should
// hold the dataset, so the likeliest truth is that its sync has not landed
// yet — and the earlier 502 (retryable) is a more honest answer than a
// semantic "does not exist".
func (rt *Router) routeRead(w http.ResponseWriter, r *http.Request, name string, body []byte) {
	cands := rt.readCandidates(name)
	var firstFailure *recorder
	var first404 *recorder
	for ai, idx := range cands {
		req := r.Clone(r.Context())
		if body != nil {
			req.Body = io.NopCloser(bytes.NewReader(body))
			req.ContentLength = int64(len(body))
		}
		done := rt.trackRoute(name, idx)
		rec := newRecorder()
		rt.backends[idx].ServeAPI(rec, req)
		done()
		if rec.code == http.StatusBadGateway || rec.proxyErr != nil {
			rt.markBackendDown(idx)
			if firstFailure == nil && rec.proxyErr == nil {
				firstFailure = rec
			}
			continue
		}
		if rec.code == http.StatusNotFound && len(cands) > 1 {
			// Reachable but not holding the dataset: stale placement — a
			// replica that restarted empty, or a probe clearing the down
			// flag before the reconcile re-pins. Another replica may hold
			// a copy; the backend itself is healthy, so it is not marked
			// down. If every candidate 404s, the 404 was real.
			if first404 == nil {
				first404 = rec
			}
			continue
		}
		if ai > 0 {
			rec.header.Set(client.HeaderFailedOver, rt.backends[idx].Name())
			rt.failovers.Add(1)
		}
		rec.replay(w)
		return
	}
	// A dead backend outranks a 404: the dataset may well exist on it, and
	// 502 tells the client (and the SDK's retry loop) to try again, where a
	// 404 would read as authoritative.
	if firstFailure != nil {
		firstFailure.replay(w)
		return
	}
	if first404 != nil {
		first404.replay(w)
		return
	}
	writeError(w, http.StatusBadGateway,
		fmt.Errorf("%w: every replica of %q failed", ErrShardDown, name))
}

// serveCreateDataset registers a dataset on the shard that should own it —
// the spec's pin when present, an existing assignment, or the ring owner —
// and records the placement on success, so every later request routes to
// where the dataset actually lives.
func (rt *Router) serveCreateDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if rt.isMoving(name) {
		writeError(w, http.StatusConflict, fmt.Errorf("dataset %q is mid-move; retry shortly", name))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad dataset spec: %w", err))
		return
	}
	var spec client.DatasetSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad dataset spec: %w", err))
		return
	}
	if service.AsyncRequested(r) {
		// Fail fast on a taken name — the same synchronous 409 the leaf
		// tier gives — rather than minting a job doomed to fail on poll.
		// An unreachable owner skips the check; the job reports the
		// outcome either way.
		cur := rt.OwnerIndex(name)
		if ds, err := rt.backends[cur].Datasets(); err == nil && contains(ds, name) {
			writeError(w, http.StatusConflict, fmt.Errorf(
				"dataset %q already registered on shard %s", name, rt.backends[cur].Name()))
			return
		}
		// The job resource lives on the tier the client talks to: the
		// router runs a job whose work is the synchronous forward below, so
		// GET /v1/jobs/{id} against the router always finds it.
		auth := r.Header.Get("Authorization")
		specCopy := spec
		job, err := rt.jobs.SubmitTagged("", client.JobKindCreate, name,
			r.Header.Get(client.HeaderRequestID),
			func(cancel <-chan struct{}, progress func(string)) (*client.DatasetInfo, error) {
				progress("forwarding")
				info, _, err := rt.createOnOwner(name, &specCopy, body, auth)
				return info, err
			})
		if err != nil {
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
		return
	}
	info, status, err := rt.createOnOwner(name, &spec, body, r.Header.Get("Authorization"))
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// createOnOwner registers a dataset on the shard that should own it — the
// spec's pin when present, an existing assignment, or the ring owner —
// records the placement on success, and stamps it into the returned info.
// On failure the returned status is what the HTTP answer should carry.
func (rt *Router) createOnOwner(name string, spec *client.DatasetSpec, body []byte, auth string) (*client.DatasetInfo, int, error) {
	cur := rt.OwnerIndex(name)
	idx := cur
	if spec.Shard != "" {
		pinned, ok := rt.byName[spec.Shard]
		if !ok {
			return nil, http.StatusBadRequest, fmt.Errorf("unknown shard %q", spec.Shard)
		}
		idx = pinned
	}
	if idx != cur {
		// A pin that diverges from the current owner must not mint a second
		// copy of a dataset that is already live there: the target shard
		// cannot see the duplicate, so the router checks the owner itself.
		// An unreachable owner refuses the create — minting a copy now
		// would leave a stale twin serving once the owner recovers.
		ds, err := rt.backends[cur].Datasets()
		if err != nil {
			return nil, http.StatusBadGateway, fmt.Errorf(
				"cannot verify %q is absent from its current owner %s: %v",
				name, rt.backends[cur].Name(), err)
		}
		for _, d := range ds {
			if d == name {
				return nil, http.StatusConflict, fmt.Errorf(
					"dataset %q already registered on shard %s; delete it before re-creating elsewhere",
					name, rt.backends[cur].Name())
			}
		}
	}
	req, err := http.NewRequest(http.MethodPost, "/v1/datasets/"+name, bytes.NewReader(body))
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	req.Header.Set("Content-Type", "application/json")
	if auth != "" {
		req.Header.Set("Authorization", auth)
	}
	rec := newRecorder()
	rt.backends[idx].ServeAPI(rec, req)
	if rec.code != http.StatusCreated {
		msg := errorMessage(rec.body.Bytes())
		if msg == "" {
			msg = fmt.Sprintf("shard %s answered %d", rt.backends[idx].Name(), rec.code)
		}
		return nil, rec.code, errors.New(msg)
	}
	set := rt.placementFor(name, idx, spec.Replication)
	rt.pinSet(name, set)
	if len(set) > 1 {
		// Followers sync in the background: the create answers as soon as
		// the primary serves, redundancy arrives via the replicate job.
		rt.submitReplicate(name, auth)
	}
	// Stamp the placement into the response so the caller learns where the
	// dataset landed.
	var info client.DatasetInfo
	if err := json.Unmarshal(rec.body.Bytes(), &info); err != nil {
		return nil, http.StatusBadGateway, fmt.Errorf("shard %s: malformed create response", rt.backends[idx].Name())
	}
	info.Shard = rt.backends[idx].Name()
	info.Replicas = rt.backendNames(set)
	return &info, http.StatusCreated, nil
}

// placementFor composes a dataset's ordered replica set: the chosen primary
// followed by ring-walk followers on distinct backends, rf members in total
// (0 selects the router default; clamped to the backend count).
func (rt *Router) placementFor(name string, primary, rf int) []int {
	if rf <= 0 {
		rt.mu.RLock()
		rf = rt.replication
		rt.mu.RUnlock()
	}
	if rf > len(rt.backends) {
		rf = len(rt.backends)
	}
	set := []int{primary}
	for _, c := range rt.ringReplicas(name, len(rt.backends)) {
		if len(set) >= rf {
			break
		}
		if !containsInt(set, c) {
			set = append(set, c)
		}
	}
	return set
}

// backendNames maps backend indices to their shard names.
func (rt *Router) backendNames(set []int) []string {
	if len(set) <= 1 {
		return nil
	}
	names := make([]string, len(set))
	for i, idx := range set {
		names[i] = rt.backends[idx].Name()
	}
	return names
}

// isMoving reports whether a move job currently owns the dataset's
// lifecycle (creates and deletes are refused meanwhile).
func (rt *Router) isMoving(name string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.moving[name]
}

// serveRestoreSnapshot forwards a snapshot upload to the shard that should
// own the dataset and records the placement on success — the upload analog
// of serveCreateDataset (snapshot uploads carry no spec, so no pin; an
// explicit placement goes through /move afterwards).
func (rt *Router) serveRestoreSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if rt.isMoving(name) {
		writeError(w, http.StatusConflict, fmt.Errorf("dataset %q is mid-move; retry shortly", name))
		return
	}
	idx := rt.OwnerIndex(name)
	rec := newRecorder()
	rt.backends[idx].ServeAPI(rec, r)
	if rec.code == http.StatusCreated {
		set := rt.placementFor(name, idx, 0)
		rt.pinSet(name, set)
		if len(set) > 1 {
			rt.submitReplicate(name, r.Header.Get("Authorization"))
		}
		var info client.DatasetInfo
		if json.Unmarshal(rec.body.Bytes(), &info) == nil {
			info.Shard = rt.backends[idx].Name()
			info.Replicas = rt.backendNames(set)
			writeJSON(w, rec.code, info)
			return
		}
	}
	rec.replay(w)
}

func (rt *Router) serveGetJob(w http.ResponseWriter, r *http.Request) {
	job, err := rt.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (rt *Router) serveListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, client.JobList{Jobs: rt.jobs.List()})
}

func (rt *Router) serveCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := rt.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// serveDeleteDataset forwards the delete to the primary and erases the
// assignment on success; follower copies are deleted best-effort afterwards
// (an unreachable follower keeps its copy, which the conservative reconcile
// rule can never route to while the routing table has no entry pointing at
// it). Re-creating the dataset afterwards (optionally pinned elsewhere) is
// how a dataset moves without a restart.
func (rt *Router) serveDeleteDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if rt.isMoving(name) {
		writeError(w, http.StatusConflict, fmt.Errorf("dataset %q is mid-move; retry shortly", name))
		return
	}
	set := rt.replicaSetFor(name)
	rec := newRecorder()
	rt.backends[set[0]].ServeAPI(rec, r)
	if rec.code/100 == 2 {
		auth := r.Header.Get("Authorization")
		for _, f := range set[1:] {
			if _, err := rt.forward(f, http.MethodDelete, "/v1/datasets/"+name, nil, auth, ""); err != nil {
				slog.Warn("follower delete failed; stale copy retained",
					"dataset", name, "shard", rt.backends[f].Name(), "err", err)
			}
		}
		rt.unpin(name)
	}
	rec.replay(w)
}

// serveBatch splits a batch by owning shard, forwards the sub-batches
// concurrently, and merges the per-item results back in request order. A
// whole sub-batch that fails (shard down, saturated) becomes that status on
// each of its items — one shard's trouble never fails another shard's
// items. When every item lands on one shard the original body streams
// through, so a single-shard deployment keeps the leaf semantics exactly.
func (rt *Router) serveBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var req client.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Items) > service.MaxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d batch items exceed the limit of %d", len(req.Items), service.MaxBatchItems))
		return
	}

	results := make([]client.BatchItemResult, len(req.Items))
	groups := make(map[int][]int) // backend index -> original item indices
	tried := make([]map[int]bool, len(req.Items))
	for i := range req.Items {
		ds := req.Items[i].Dataset
		if ds == "" {
			results[i] = client.BatchItemResult{Status: http.StatusBadRequest, Error: "missing dataset"}
			continue
		}
		tried[i] = make(map[int]bool)
		idx := rt.readCandidates(ds)[0]
		groups[idx] = append(groups[idx], i)
	}
	if len(groups) == 1 && len(groups[firstKey(groups)]) == len(req.Items) {
		// Single owner and no locally rejected items: stream through via the
		// failover-aware path (the whole batch is one dataset group).
		idx := firstKey(groups)
		if len(rt.readCandidates(req.Items[0].Dataset)) == 1 {
			// No replicas to fail over to: stream the original body through.
			done := rt.trackRoute(req.Items[0].Dataset, idx)
			defer done()
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
			rt.backends[idx].ServeAPI(w, r)
			return
		}
	}

	var wg sync.WaitGroup
	for idx, items := range groups {
		wg.Add(1)
		go func(idx int, items []int) {
			defer wg.Done()
			rt.forwardSubBatch(r, &req, idx, items, results, tried, 0)
		}(idx, items)
	}
	wg.Wait()

	out := client.BatchResponse{Items: results}
	for i := range results {
		if results[i].Status == http.StatusOK {
			out.OK++
		} else {
			out.Failed++
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// forwardSubBatch sends the items owned by one backend as a batch of their
// own and scatters the answers back into the original positions. When the
// whole sub-batch fails at the transport level, each item is regrouped onto
// its next untried replica and re-dispatched — batch items enjoy the same
// failover as single requests. Recursion terminates because every dispatch
// marks the backend tried for all its items.
func (rt *Router) forwardSubBatch(r *http.Request, req *client.BatchRequest, idx int, items []int, results []client.BatchItemResult, tried []map[int]bool, attempt int) {
	sub := client.BatchRequest{TimeoutMs: req.TimeoutMs, Parallel: req.Parallel, Items: make([]client.BatchItem, len(items))}
	for si, oi := range items {
		sub.Items[si] = req.Items[oi]
	}
	subBody, err := json.Marshal(&sub)
	if err != nil {
		fillGroupError(results, items, http.StatusInternalServerError, err.Error())
		return
	}
	fwd, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "/v1/batch", bytes.NewReader(subBody))
	if err != nil {
		fillGroupError(results, items, http.StatusInternalServerError, err.Error())
		return
	}
	fwd.Header.Set("Content-Type", "application/json")
	if auth := r.Header.Get("Authorization"); auth != "" {
		fwd.Header.Set("Authorization", auth)
	}
	// Each item joins the in-flight table against the backend actually hit,
	// so a move drains batch traffic to the source like single requests.
	dones := make([]func(), 0, len(items))
	for _, oi := range items {
		dones = append(dones, rt.trackRoute(req.Items[oi].Dataset, idx))
	}
	rec := newRecorder()
	rt.backends[idx].ServeAPI(rec, fwd)
	for _, done := range dones {
		done()
	}
	if rec.code == http.StatusBadGateway || rec.proxyErr != nil {
		rt.markBackendDown(idx)
		msg := errorMessage(rec.body.Bytes())
		if msg == "" {
			msg = fmt.Sprintf("shard %s unreachable", rt.backends[idx].Name())
		}
		regroups := make(map[int][]int)
		for _, oi := range items {
			tried[oi][idx] = true
			next := -1
			for _, c := range rt.readCandidates(req.Items[oi].Dataset) {
				if !tried[oi][c] {
					next = c
					break
				}
			}
			if next < 0 {
				results[oi] = client.BatchItemResult{Status: http.StatusBadGateway, Error: msg}
				continue
			}
			regroups[next] = append(regroups[next], oi)
		}
		for nidx, nitems := range regroups {
			rt.failovers.Add(1)
			rt.forwardSubBatch(r, req, nidx, nitems, results, tried, attempt+1)
		}
		return
	}
	if rec.code != http.StatusOK {
		msg := errorMessage(rec.body.Bytes())
		if msg == "" {
			msg = fmt.Sprintf("shard %s answered %d", rt.backends[idx].Name(), rec.code)
		}
		fillGroupError(results, items, rec.code, msg)
		return
	}
	var subResp client.BatchResponse
	if err := json.Unmarshal(rec.body.Bytes(), &subResp); err != nil || len(subResp.Items) != len(items) {
		fillGroupError(results, items, http.StatusBadGateway,
			fmt.Sprintf("shard %s: malformed batch response", rt.backends[idx].Name()))
		return
	}
	for si, oi := range items {
		results[oi] = subResp.Items[si]
	}
	// Stale placement: an item that 404'd on this backend may still be held
	// by another replica (one restarted empty, or a probe cleared the down
	// flag before the reconcile re-pinned). Retry those items on their next
	// untried candidate — the backend stays up; it is healthy, just not a
	// holder. If every candidate 404s, the first 404 stands.
	regroups := make(map[int][]int)
	for si, oi := range items {
		if subResp.Items[si].Status != http.StatusNotFound {
			continue
		}
		tried[oi][idx] = true
		next := -1
		for _, c := range rt.readCandidates(req.Items[oi].Dataset) {
			if !tried[oi][c] {
				next = c
				break
			}
		}
		if next >= 0 {
			regroups[next] = append(regroups[next], oi)
		}
	}
	for nidx, nitems := range regroups {
		rt.failovers.Add(1)
		rt.forwardSubBatch(r, req, nidx, nitems, results, tried, attempt+1)
	}
}

func fillGroupError(results []client.BatchItemResult, items []int, status int, msg string) {
	for _, oi := range items {
		results[oi] = client.BatchItemResult{Status: status, Error: msg}
	}
}

func errorMessage(body []byte) string {
	var eb struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(body, &eb)
	return eb.Error
}

func firstKey(m map[int][]int) int {
	for k := range m {
		return k
	}
	return 0
}

// recorder captures a forwarded response so the router can inspect the
// status (lifecycle bookkeeping) or re-scatter the body (batch merge)
// before anything reaches the client.
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
	// proxyErr is set by the backend (via the proxyFailed sink) when the
	// upstream connection died mid-body: the captured response is truncated
	// and must not be replayed as an answer, whatever its status code.
	proxyErr error
}

func newRecorder() *recorder { return &recorder{code: http.StatusOK, header: http.Header{}} }

func (rec *recorder) Header() http.Header         { return rec.header }
func (rec *recorder) WriteHeader(code int)        { rec.code = code }
func (rec *recorder) Write(p []byte) (int, error) { return rec.body.Write(p) }

// proxyFailed implements the sink Remote.ServeAPI reports mid-body copy
// errors to.
func (rec *recorder) proxyFailed(err error) { rec.proxyErr = err }

// replay copies the captured response to the real writer. Headers the edge
// middleware already stamped (the request ID) are skipped: the leaf echoes
// the same value, and adding it again would duplicate the header.
func (rec *recorder) replay(w http.ResponseWriter) {
	for k, vs := range rec.header {
		if len(w.Header().Values(k)) > 0 && k == http.CanonicalHeaderKey(client.HeaderRequestID) {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.code)
	_, _ = w.Write(rec.body.Bytes())
}

// ShardHealth is one shard's slice of the aggregated health payload.
// LastProbe and ConsecutiveFailures expose the router's probe bookkeeping, so
// an operator (or the CI fault-injection check) can tell a shard that just
// went down from one that has been flapping for minutes.
type ShardHealth struct {
	Name                string   `json:"name"`
	Ok                  bool     `json:"ok"`
	Error               string   `json:"error,omitempty"`
	Datasets            []string `json:"datasets,omitempty"`
	LastProbe           string   `json:"last_probe,omitempty"` // RFC 3339; empty = never probed
	ConsecutiveFailures int64    `json:"consecutive_failures,omitempty"`
}

func (rt *Router) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	shards := make([]ShardHealth, len(rt.backends))
	rt.fanOut(func(i int, b Backend) {
		sh := ShardHealth{Name: b.Name()}
		ds, err := b.Datasets()
		rt.noteProbe(i, err)
		if err != nil {
			sh.Error = err.Error()
		} else {
			sh.Ok = true
			sh.Datasets = ds
		}
		if ns := rt.probes[i].lastUnixNano.Load(); ns != 0 {
			sh.LastProbe = time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
		}
		sh.ConsecutiveFailures = rt.probes[i].consecFails.Load()
		shards[i] = sh
	})
	up := 0
	for _, sh := range shards {
		if sh.Ok {
			up++
		}
	}
	// Some shards down is degraded (the healthy ones keep serving theirs,
	// still 200 for load balancers); every shard down is a dead fleet.
	status, code := "ok", http.StatusOK
	switch {
	case up == 0:
		status, code = "down", http.StatusServiceUnavailable
	case up < len(shards):
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{"status": status, "shards": shards})
}

// ShardStats is one shard's slice of the aggregated stats payload.
type ShardStats struct {
	Name  string         `json:"name"`
	Ok    bool           `json:"ok"`
	Error string         `json:"error,omitempty"`
	Stats *service.Stats `json:"stats,omitempty"`
}

// Stats is the aggregated /v1/stats payload: summed counters over the
// reachable shards plus the per-shard breakdown. Latency histograms share
// one fixed log-scale bucket schema, so they merge by addition and the
// fleet p50/p99 in Totals are true quantiles (within one bucket width) —
// not the worst per-shard value.
type Stats struct {
	Shards int `json:"shards"`
	Down   int `json:"down"`
	// Replication is the router's default replica count; Replicas lists the
	// pinned replica sets (dataset -> shard names, primary first).
	Replication int                 `json:"replication,omitempty"`
	Replicas    map[string][]string `json:"replicas,omitempty"`
	// StaleReplicas lists replica copies that missed a mutation forward and
	// are excluded from read failover until a snapshot re-copy lands:
	// dataset -> shard names. Empty on a converged fleet.
	StaleReplicas map[string][]string `json:"stale_replicas,omitempty"`
	Totals        service.Stats       `json:"totals"`
	PerShard      []ShardStats        `json:"per_shard"`
}

// Stats fans out to every shard and aggregates.
func (rt *Router) Stats() Stats {
	per := make([]ShardStats, len(rt.backends))
	rt.fanOut(func(i int, b Backend) {
		ss := ShardStats{Name: b.Name()}
		st, err := b.Stats()
		rt.noteProbe(i, err)
		if err != nil {
			ss.Error = err.Error()
		} else {
			ss.Ok = true
			ss.Stats = &st
		}
		per[i] = ss
	})
	out := Stats{Shards: len(per), PerShard: per}
	rt.mu.RLock()
	out.Replication = rt.replication
	if len(rt.assign) > 0 {
		out.Replicas = make(map[string][]string, len(rt.assign))
		for ds, set := range rt.assign {
			names := make([]string, len(set))
			for i, idx := range set {
				names[i] = rt.backends[idx].Name()
			}
			out.Replicas[ds] = names
		}
	}
	rt.mu.RUnlock()
	out.StaleReplicas = rt.staleReplicaNames()
	out.Totals.Failovers = rt.failovers.Load()
	out.Totals.DrainTimeouts = rt.drainTimeouts.Load()
	out.Totals.ReplicaSyncs = rt.replicaSyncs.Load()
	// The router's own control-plane jobs (forwarded creates, moves,
	// replicate jobs) are a resource of this tier, so they count into the
	// fleet totals alongside the leaves' own jobs.
	routerJobsDone, routerJobsFailed := rt.jobs.Counts()
	out.Totals.JobsDone += routerJobsDone
	out.Totals.JobsFailed += routerJobsFailed
	datasets := make(map[string]bool)
	var worstP50, worstP99 float64
	bucketless := false
	for _, ss := range per {
		if !ss.Ok {
			out.Down++
			continue
		}
		st := ss.Stats
		tot := &out.Totals
		tot.Requests += st.Requests
		tot.Completed += st.Completed
		tot.Failed += st.Failed
		tot.RejectedSaturated += st.RejectedSaturated
		tot.DeadlineExceeded += st.DeadlineExceeded
		tot.Mutations += st.Mutations
		tot.InFlight += st.InFlight
		tot.Queued += st.Queued
		tot.MaxInFlight += st.MaxInFlight
		tot.MaxQueue += st.MaxQueue
		if st.UptimeSeconds > tot.UptimeSeconds {
			tot.UptimeSeconds = st.UptimeSeconds
		}
		for _, d := range st.Datasets {
			datasets[d] = true
		}
		tot.Cache.Entries += st.Cache.Entries
		tot.Cache.Capacity += st.Cache.Capacity
		tot.Cache.CostUsed += st.Cache.CostUsed
		tot.Cache.MaxCost += st.Cache.MaxCost
		tot.Cache.Hits += st.Cache.Hits
		tot.Cache.Misses += st.Cache.Misses
		tot.Cache.Coalesced += st.Cache.Coalesced
		tot.Cache.Evictions += st.Cache.Evictions
		tot.Cache.Expirations += st.Cache.Expirations
		tot.JobsDone += st.JobsDone
		tot.JobsFailed += st.JobsFailed
		tot.StandingQueries += st.StandingQueries
		tot.StandingEvents += st.StandingEvents
		tot.StandingLagged += st.StandingLagged
		tot.StandingEvals += st.StandingEvals
		tot.StandingNotified += st.StandingNotified
		// Keyed and stage histograms merge per entry by histogram addition,
		// exactly like the global latency series: the fleet's per-dataset
		// quantiles are true quantiles.
		tot.DatasetStats = client.MergeKeyStats(tot.DatasetStats, st.DatasetStats)
		tot.Stages = client.MergeStageStats(tot.Stages, st.Stages)
		tot.Latency.Merge(st.Latency)
		if st.Latency.Count > 0 && len(st.Latency.Buckets) == 0 {
			bucketless = true
		}
		if st.Latency.P50Ms > worstP50 {
			worstP50 = st.Latency.P50Ms
		}
		if st.Latency.P99Ms > worstP99 {
			worstP99 = st.Latency.P99Ms
		}
	}
	if bucketless && out.Totals.Latency.Count > 0 {
		// Any peer predating the histogram schema poisons the merged
		// quantiles (its requests count toward the total but not toward
		// the buckets), so the whole fleet falls back to the conservative
		// worst-of approximation rather than reporting quantiles over a
		// subset of the traffic.
		out.Totals.Latency.P50Ms = worstP50
		out.Totals.Latency.P99Ms = worstP99
	}
	for d := range datasets {
		out.Totals.Datasets = append(out.Totals.Datasets, d)
	}
	sort.Strings(out.Totals.Datasets)
	return out
}

func (rt *Router) serveStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats())
}

// serveMetrics renders the router's Prometheus exposition: every reachable
// shard's series federated under a shard="..." label (so sum() over the
// label is the fleet total, with no unlabeled duplicate to double-count),
// plus the router's own routing and control-plane counters under
// macserver_router_* names and a per-shard liveness gauge.
func (rt *Router) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	st := rt.Stats()
	w.Header().Set("Content-Type", service.PromContentType)
	sets := make([]service.PromSet, 0, len(st.PerShard))
	up := make([]service.PromSample, len(st.PerShard))
	for i, ss := range st.PerShard {
		label := []service.PromLabel{{Name: "shard", Value: ss.Name}}
		if ss.Ok {
			sets = append(sets, service.PromSet{Labels: label, Stats: *ss.Stats})
			up[i] = service.PromSample{Labels: label, Value: 1}
		} else {
			up[i] = service.PromSample{Labels: label, Value: 0}
		}
	}
	_ = service.WriteProm(w, sets)
	_ = service.PromGauge(w, "macserver_shard_up",
		"Whether the shard answered the stats fan-out (1 up, 0 down).", up)
	routerJobsDone, routerJobsFailed := rt.jobs.Counts()
	one := func(v int64) []service.PromSample { return []service.PromSample{{Value: float64(v)}} }
	_ = service.PromCounter(w, "macserver_router_failovers_total",
		"Reads the router served from a follower because the primary failed.", one(rt.failovers.Load()))
	_ = service.PromCounter(w, "macserver_router_drain_timeouts_total",
		"Dataset moves whose source drain timed out.", one(rt.drainTimeouts.Load()))
	_ = service.PromCounter(w, "macserver_router_replica_syncs_total",
		"Replicate jobs the router submitted to sync followers.", one(rt.replicaSyncs.Load()))
	_ = service.PromCounter(w, "macserver_router_stale_replicas_marked_total",
		"Replica copies marked stale by a failed follower mutation forward.", one(rt.staleMarked.Load()))
	staleNow := 0
	for _, names := range st.StaleReplicas {
		staleNow += len(names)
	}
	_ = service.PromGauge(w, "macserver_router_stale_replicas",
		"Replica copies currently stale and excluded from read failover.", one(int64(staleNow)))
	_ = service.PromCounter(w, "macserver_router_jobs_total",
		"Settled router control-plane jobs by outcome.", []service.PromSample{
			{Labels: []service.PromLabel{{Name: "outcome", Value: "done"}}, Value: float64(routerJobsDone)},
			{Labels: []service.PromLabel{{Name: "outcome", Value: "failed"}}, Value: float64(routerJobsFailed)},
		})
}

// fanOut runs fn once per backend, concurrently — a down remote shard costs
// its own timeout, not the sum over shards.
func (rt *Router) fanOut(fn func(i int, b Backend)) {
	var wg sync.WaitGroup
	for i, b := range rt.backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			fn(i, b)
		}(i, b)
	}
	wg.Wait()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the canonical {"error", "code"} body; the code mapping
// is shared with the leaf tier so every tier's errors agree.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{
		"error": err.Error(),
		"code":  client.CodeForStatus(status),
	})
}
