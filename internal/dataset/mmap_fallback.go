//go:build !unix || nommap

package dataset

import (
	"fmt"
	"os"
)

// No-mmap fallback: the snapshot is read into one 8-byte-aligned heap
// buffer and loaded in place. Everything downstream of mapFile — header
// validation, zero-copy slab views, pinning — is identical to the mmap
// path; only the backing memory differs (heap instead of page cache), so
// the two loaders stay behaviorally interchangeable and CI exercises this
// one under the `nommap` build tag.

const mmapAvailable = false

type mapHolder struct {
	data []byte
}

// mapFile reads the first size bytes of f into an aligned buffer. The file
// position is irrelevant.
func mapFile(f *os.File, size int64) (*mapHolder, error) {
	if size != int64(int(size)) {
		return nil, fmt.Errorf("dataset: snapshot of %d bytes exceeds the address space", size)
	}
	buf := alignedBuffer(int(size))
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			return nil, err
		}
	}
	return &mapHolder{data: buf}, nil
}

// close releases nothing: the buffer is ordinary garbage-collected memory.
func (h *mapHolder) close() {}
