package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"roadsocial/internal/gen"
	"roadsocial/internal/mac"
	"roadsocial/internal/service"
)

// testNetwork builds a small synthetic road-social network with a feasible
// (Q, k, t) workload.
func testNetwork(t testing.TB) (*mac.Network, []int32, int, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	net, err := gen.Network(gen.NetworkConfig{
		Social: gen.SocialConfig{
			N: 150, D: 3, AttachEdges: 3,
			Communities: 3, CommunitySize: 30, CommunityP: 0.6,
		},
		RoadRows: 10, RoadCols: 10,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const k, tt = 4, 900.0
	qs := gen.Queries(net, k, tt, 3, 1, rng)
	if len(qs) == 0 {
		t.Fatal("no feasible query in test network")
	}
	return net, qs[0], k, tt
}

// twoShardRouter builds a 2-shard router and registers datasets on their
// ring owners, returning the router plus the per-dataset owner index.
func twoShardRouter(t testing.TB, datasets []string, net *mac.Network) (*Router, []*Local, map[string]int) {
	t.Helper()
	// A deep queue and a generous deadline: these tests assert routing, not
	// saturation or timeouts, and CI runners may have few cores (searches
	// run much slower under -race).
	cfg := service.Config{MaxInFlight: 2, MaxQueue: 64, DefaultTimeout: 120 * time.Second}
	locals := []*Local{
		NewLocal("shard-0", service.New(cfg)),
		NewLocal("shard-1", service.New(cfg)),
	}
	rt, err := NewRouter([]Backend{locals[0], locals[1]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	owners := make(map[string]int, len(datasets))
	for _, ds := range datasets {
		idx := rt.OwnerIndex(ds)
		owners[ds] = idx
		if err := locals[idx].Server().AddDataset(ds, net); err != nil {
			t.Fatal(err)
		}
	}
	return rt, locals, owners
}

func postJSON(t testing.TB, url string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode, out
}

func searchBody(t testing.TB, dataset string, q []int32, k int, tt float64) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"dataset": dataset, "q": q, "k": k, "t": tt,
		"region": map[string]any{"lo": []float64{0.2, 0.2}, "hi": []float64{0.25, 0.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRingDeterministicAndBalanced: ownership is stable across router
// instances and spreads many datasets over both shards.
func TestRingDeterministicAndBalanced(t *testing.T) {
	mk := func() *Router {
		rt, err := NewRouter([]Backend{
			NewLocal("shard-0", service.New(service.Config{})),
			NewLocal("shard-1", service.New(service.Config{})),
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	a, b := mk(), mk()
	counts := [2]int{}
	for i := 0; i < 200; i++ {
		ds := fmt.Sprintf("dataset-%d", i)
		if a.OwnerIndex(ds) != b.OwnerIndex(ds) {
			t.Fatalf("%s: owner differs across router instances", ds)
		}
		counts[a.OwnerIndex(ds)]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("degenerate partition: %v", counts)
	}
	if _, err := NewRouter([]Backend{
		NewLocal("dup", service.New(service.Config{})),
		NewLocal("dup", service.New(service.Config{})),
	}, 0); err == nil {
		t.Fatal("duplicate backend names must be rejected")
	}
	if _, err := NewRouter(nil, 0); err == nil {
		t.Fatal("empty backend set must be rejected")
	}
}

// TestRouteLandsOnOwningShard: a search for each dataset is served by its
// ring owner — visible in the per-shard request counters — and responses
// round-trip unchanged through the router.
func TestRouteLandsOnOwningShard(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	datasets := []string{"alpha", "beta", "gamma", "delta"}
	rt, locals, owners := twoShardRouter(t, datasets, net)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	wantRequests := [2]int64{}
	for _, ds := range datasets {
		status, res := postJSON(t, ts.URL+"/v1/search", searchBody(t, ds, q, k, tt))
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (%v)", ds, status, res)
		}
		if res["dataset"] != ds {
			t.Fatalf("%s: response dataset %v", ds, res["dataset"])
		}
		wantRequests[owners[ds]]++
	}
	for i, l := range locals {
		if got := l.Server().Stats().Requests; got != wantRequests[i] {
			t.Fatalf("shard %d served %d requests, want %d", i, got, wantRequests[i])
		}
	}
	// A dataset registered on its owner is invisible to the other shard:
	// routing determinism is what keeps this a 404-free deployment.
	for _, ds := range datasets {
		other := locals[1-owners[ds]]
		for _, registered := range mustDatasets(t, other) {
			if registered == ds {
				t.Fatalf("%s registered on non-owner shard", ds)
			}
		}
	}
	// Missing dataset field → 400 at the router, not a misroute.
	if status, _ := postJSON(t, ts.URL+"/v1/search", []byte(`{"q":[1],"k":2,"t":5}`)); status != http.StatusBadRequest {
		t.Fatalf("missing dataset: status %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/search", []byte(`{`)); status != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", status)
	}
}

func mustDatasets(t testing.TB, b Backend) []string {
	t.Helper()
	ds, err := b.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestStatsAggregation: /v1/stats sums per-shard counters and unions
// datasets; /v1/healthz reports every shard healthy.
func TestStatsAggregation(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	datasets := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	rt, _, _ := twoShardRouter(t, datasets, net)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	for _, ds := range datasets {
		if status, res := postJSON(t, ts.URL+"/v1/search", searchBody(t, ds, q, k, tt)); status != http.StatusOK {
			t.Fatalf("%s: status %d (%v)", ds, status, res)
		}
	}
	var agg Stats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if agg.Shards != 2 || agg.Down != 0 {
		t.Fatalf("agg = %+v, want 2 shards up", agg)
	}
	if agg.Totals.Requests != int64(len(datasets)) || agg.Totals.Completed != int64(len(datasets)) {
		t.Fatalf("totals = %+v, want %d requests completed", agg.Totals, len(datasets))
	}
	if len(agg.Totals.Datasets) != len(datasets) {
		t.Fatalf("aggregated datasets = %v", agg.Totals.Datasets)
	}
	if agg.Totals.Latency.Count != int64(len(datasets)) || agg.Totals.Latency.MeanMs <= 0 {
		t.Fatalf("aggregated latency = %+v", agg.Totals.Latency)
	}

	var health struct {
		Status string        `json:"status"`
		Shards []ShardHealth `json:"shards"`
	}
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || len(health.Shards) != 2 {
		t.Fatalf("health = %+v", health)
	}
	for _, sh := range health.Shards {
		if !sh.Ok {
			t.Fatalf("shard %s unhealthy: %s", sh.Name, sh.Error)
		}
	}
}

// TestRemoteShardRoundTripAndDown: a remote backend proxies requests to a
// live macserver-shaped server, and answers 502 with a down marker in
// health/stats once the server goes away.
func TestRemoteShardRoundTripAndDown(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	srv := service.New(service.Config{})
	if err := srv.AddDataset("remote-ds", net); err != nil {
		t.Fatal(err)
	}
	backendTS := httptest.NewServer(srv.Handler())

	remote := NewRemote("remote-0", backendTS.URL, nil)
	rt, err := NewRouter([]Backend{remote}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	status, res := postJSON(t, ts.URL+"/v1/search", searchBody(t, "remote-ds", q, k, tt))
	if status != http.StatusOK || res["dataset"] != "remote-ds" {
		t.Fatalf("remote round trip: status %d (%v)", status, res)
	}
	agg := rt.Stats()
	if agg.Down != 0 || agg.Totals.Requests != 1 {
		t.Fatalf("remote stats = %+v", agg)
	}

	// Kill the backend: its datasets now answer 502 and stats mark it down.
	backendTS.Close()
	status, res = postJSON(t, ts.URL+"/v1/search", searchBody(t, "remote-ds", q, k, tt))
	if status != http.StatusBadGateway {
		t.Fatalf("down shard: status %d (%v), want 502", status, res)
	}
	if errStr, _ := res["error"].(string); errStr == "" {
		t.Fatalf("down shard: missing error body (%v)", res)
	}
	agg = rt.Stats()
	if agg.Down != 1 || agg.PerShard[0].Ok {
		t.Fatalf("down shard stats = %+v, want marked down", agg)
	}
	var health struct {
		Status string `json:"status"`
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	// The whole (1-shard) fleet is unreachable: that is dead, not degraded.
	if resp.StatusCode != http.StatusServiceUnavailable || health.Status != "down" {
		t.Fatalf("health = %d %q, want 503 down", resp.StatusCode, health.Status)
	}
	resp.Body.Close()
}

// TestHealthzDegraded: a fleet with one of two shards down reports degraded
// with HTTP 200 — the healthy shard keeps serving its datasets.
func TestHealthzDegraded(t *testing.T) {
	srv := service.New(service.Config{})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	rt, err := NewRouter([]Backend{
		NewLocal("up", srv),
		NewRemote("down", deadURL, nil),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string        `json:"status"`
		Shards []ShardHealth `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "degraded" {
		t.Fatalf("health = %d %q, want 200 degraded", resp.StatusCode, health.Status)
	}
}

// TestConcurrentShardedLoad: concurrent requests across shards and stats
// fan-outs complete without races (run with -race).
func TestConcurrentShardedLoad(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	datasets := []string{"alpha", "beta", "gamma", "delta"}
	rt, _, _ := twoShardRouter(t, datasets, net)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 3 {
				resp, err := http.Get(ts.URL + "/v1/stats")
				if err != nil {
					t.Errorf("stats: %v", err)
					return
				}
				resp.Body.Close()
				return
			}
			ds := datasets[i%len(datasets)]
			status, res := postJSON(t, ts.URL+"/v1/search", searchBody(t, ds, q, k, tt))
			if status != http.StatusOK {
				t.Errorf("%s: status %d (%v)", ds, status, res)
			}
		}(i)
	}
	wg.Wait()
	if agg := rt.Stats(); agg.Totals.Completed == 0 {
		t.Fatalf("no completed requests in %+v", agg)
	}
}
