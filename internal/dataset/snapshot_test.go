package dataset

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"slices"
	"testing"

	"roadsocial/internal/gen"
	"roadsocial/internal/geom"
	"roadsocial/internal/mac"
	"roadsocial/internal/road"
)

// snapshotNetwork builds a synthetic network with a G-tree and a feasible
// query workload.
func snapshotNetwork(t testing.TB) (*mac.Network, []int32, int, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	net, err := gen.Network(gen.NetworkConfig{
		Social: gen.SocialConfig{
			N: 150, D: 3, AttachEdges: 3,
			Communities: 3, CommunitySize: 30, CommunityP: 0.6,
		},
		RoadRows: 10, RoadCols: 10,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	net.Oracle = road.BuildGTree(net.Road, 0)
	const k, tt = 4, 900.0
	qs := gen.Queries(net, k, tt, 3, 1, rng)
	if len(qs) == 0 {
		t.Fatal("no feasible query in test network")
	}
	return net, qs[0], k, tt
}

// TestSnapshotRoundTrip: every way of loading a snapshot — the legacy v1
// codec, the v2 buffered reader, and the v2 file loader (mmap on platforms
// that have it, the aligned-buffer fallback under the nommap tag) — yields
// a network that answers searches byte-identically to the freshly-built
// one, and the structural invariants (counts, attrs, locations, G-tree
// presence) survive exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	net, q, k, tt := snapshotNetwork(t)

	var v1, v2 bytes.Buffer
	if err := writeSnapshotV1(&v1, net); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&v2, net); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v2.Bytes(), []byte(snapshotMagicV2)) {
		t.Fatalf("WriteSnapshot emitted magic %q, want v2", v2.Bytes()[:8])
	}
	path := filepath.Join(t.TempDir(), "net.snap")
	if err := WriteSnapshotFile(path, net); err != nil {
		t.Fatal(err)
	}

	region, err := geom.NewBox([]float64{0.2, 0.2}, []float64{0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	search := func(n *mac.Network) []byte {
		t.Helper()
		res, err := mac.GlobalSearch(n, &mac.Query{Q: q, K: k, T: tt, Region: region, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := search(net)
	wantOff, wantNbr, wantWgt := net.Road.CSR()

	loads := []struct {
		name string
		load func() (*mac.Network, error)
	}{
		{"v1-buffered", func() (*mac.Network, error) { return ReadSnapshot(bytes.NewReader(v1.Bytes())) }},
		{"v2-buffered", func() (*mac.Network, error) { return ReadSnapshot(bytes.NewReader(v2.Bytes())) }},
		{"v2-file", func() (*mac.Network, error) { return ReadSnapshotFile(path) }},
	}
	for _, l := range loads {
		got, err := l.load()
		if err != nil {
			t.Fatalf("%s: %v", l.name, err)
		}
		if got.Social.N() != net.Social.N() || got.Social.M() != net.Social.M() {
			t.Fatalf("%s: social mismatch: %d/%d vs %d/%d", l.name,
				got.Social.N(), got.Social.M(), net.Social.N(), net.Social.M())
		}
		if got.Road.N() != net.Road.N() || got.Road.M() != net.Road.M() {
			t.Fatalf("%s: road graph mismatch", l.name)
		}
		for v := 0; v < net.Social.N(); v++ {
			a, b := net.Social.Attrs(v), got.Social.Attrs(v)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: attrs of %d differ", l.name, v)
				}
			}
			if net.Locs[v] != got.Locs[v] {
				t.Fatalf("%s: location of %d differs", l.name, v)
			}
		}
		if _, ok := got.Oracle.(*road.GTree); !ok {
			t.Fatalf("%s: G-tree did not survive the snapshot: oracle %T", l.name, got.Oracle)
		}
		// The road CSR arrays converge to the same canonical layout
		// regardless of load path — the property that lets one snapshot
		// format serve as both the in-memory and on-disk representation.
		off, nbr, wgt := got.Road.CSR()
		if !slices.Equal(off, wantOff) || !slices.Equal(nbr, wantNbr) || !slices.Equal(wgt, wantWgt) {
			t.Fatalf("%s: CSR arrays differ from freshly-built", l.name)
		}
		if have := search(got); !bytes.Equal(want, have) {
			t.Fatalf("%s: loaded search differs from freshly-built:\n built: %s\nloaded: %s", l.name, want, have)
		}
	}
}

// TestSnapshotFileAndLabels: the file helpers round-trip through disk, and
// labels survive.
func TestSnapshotFileAndLabels(t *testing.T) {
	net, _, _, _ := snapshotNetwork(t)
	path := filepath.Join(t.TempDir(), "net.snap")
	if err := WriteSnapshotFile(path, net); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < net.Social.N(); v++ {
		if net.Social.Label(v) != got.Social.Label(v) {
			t.Fatalf("label of %d differs: %q vs %q", v, net.Social.Label(v), got.Social.Label(v))
		}
	}
}

// TestSnapshotCorruption: a flipped payload byte fails the checksum, a
// mangled magic fails the version check, and a truncated file fails the
// length check — nothing half-decodes.
func TestSnapshotCorruption(t *testing.T) {
	net, _, _, _ := snapshotNetwork(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, net); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := ReadSnapshot(bytes.NewReader(flipped)); err == nil {
		t.Fatal("corrupted payload passed the checksum")
	}

	badMagic := append([]byte(nil), raw...)
	badMagic[3] = 'X'
	if _, err := ReadSnapshot(bytes.NewReader(badMagic)); err == nil {
		t.Fatal("mangled magic was accepted")
	}

	if _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated snapshot was accepted")
	}
}

// TestSnapshotHostileHeader: a snapshot whose checksum is valid (the
// attacker computes it over their own payload) but whose headers declare
// absurd element counts is rejected by the remaining-bytes bounds before
// any count-sized allocation happens — a kilobyte body must not demand
// terabytes.
func TestSnapshotHostileHeader(t *testing.T) {
	craft := func(payload []byte) []byte {
		var buf bytes.Buffer
		var header [20]byte
		copy(header[:8], snapshotMagic)
		binary.LittleEndian.PutUint64(header[8:16], uint64(len(payload)))
		binary.LittleEndian.PutUint32(header[16:20], crc32.ChecksumIEEE(payload))
		buf.Write(header[:])
		buf.Write(payload)
		return buf.Bytes()
	}
	// Social header claiming 2^40 vertices in a 3-byte payload.
	var huge bytes.Buffer
	putUvarint(&huge, 1<<40) // n
	putUvarint(&huge, 3)     // d
	putUvarint(&huge, 0)     // m
	if _, err := ReadSnapshot(bytes.NewReader(craft(huge.Bytes()))); err == nil {
		t.Fatal("hostile vertex count was accepted")
	}
	// Plausible tiny social graph, then a road graph claiming 2^40 vertices.
	var road40 bytes.Buffer
	putUvarint(&road40, 1) // n=1
	putUvarint(&road40, 1) // d=1
	putUvarint(&road40, 0) // m=0
	var attr [8]byte
	road40.Write(attr[:])  // one attribute row
	putUvarint(&road40, 0) // no labels
	putUvarint(&road40, 1<<40)
	if _, err := ReadSnapshot(bytes.NewReader(craft(road40.Bytes()))); err == nil {
		t.Fatal("hostile road vertex count was accepted")
	}
}
