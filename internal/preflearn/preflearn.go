// Package preflearn derives a preference region R from observed pairwise
// choices, providing the input the MAC model expects. The paper (footnote
// 1, Section I) assumes such a region comes from preference-learning
// techniques rather than exact user-specified weights; this package
// implements the classic halfspace-intersection learner: every observation
// "the user preferred item a over item b" constrains the weight vector to
// the halfspace S(a) >= S(b), and R is the intersection of all such
// halfspaces with the weight simplex, reported as a box-bounded convex
// polytope ready for MAC search.
package preflearn

import (
	"errors"
	"fmt"

	"roadsocial/internal/geom"
	"roadsocial/internal/lp"
)

// Comparison records that the user preferred the item with attribute vector
// Preferred over the one with Other (both d-dimensional).
type Comparison struct {
	Preferred []float64
	Other     []float64
}

// ErrInconsistent is returned when the observations admit no weight vector.
var ErrInconsistent = errors.New("preflearn: comparisons are inconsistent (empty region)")

// Learn intersects the comparison halfspaces with the weight simplex and
// returns the resulting convex region of the (d-1)-dimensional preference
// domain: its exact corner list (vertex enumeration over the active
// constraints) plus the extra halfspaces, bounded by the tight axis box.
//
// margin (>= 0) shrinks each halfspace by a slack, demanding the preference
// hold by at least that score difference — useful to absorb noise in the
// observations.
func Learn(d int, comparisons []Comparison, margin float64) (*geom.Region, error) {
	if d < 2 {
		return nil, fmt.Errorf("preflearn: need d >= 2 attributes, got %d", d)
	}
	dim := d - 1
	// Constraint set: comparison halfspaces + simplex (w_i >= 0, Σ w_i <= 1).
	var hs []geom.Halfspace
	for _, c := range comparisons {
		if len(c.Preferred) != d || len(c.Other) != d {
			return nil, fmt.Errorf("preflearn: comparison dimensionality mismatch (want %d)", d)
		}
		h := geom.ScoreOf(c.Preferred).GEHalfspace(geom.ScoreOf(c.Other))
		h.B -= margin
		hs = append(hs, h)
	}
	simplex := make([]geom.Halfspace, 0, dim+1)
	for j := 0; j < dim; j++ {
		a := make([]float64, dim)
		a[j] = -1
		simplex = append(simplex, geom.Halfspace{A: a, B: 0}) // w_j >= 0
	}
	ones := make([]float64, dim)
	for j := range ones {
		ones[j] = 1
	}
	simplex = append(simplex, geom.Halfspace{A: ones, B: 1}) // Σ w_i <= 1
	all := append(append([]geom.Halfspace{}, hs...), simplex...)

	cons := make([]lp.Constraint, len(all))
	for i, h := range all {
		cons[i] = lp.Constraint{A: h.A, B: h.B}
	}
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for j := range hi {
		hi[j] = 1
	}
	if !lp.Feasible(cons, lo, hi) {
		return nil, ErrInconsistent
	}
	// Tight bounding box of the feasible set, one min/max LP per axis.
	boxLo := make([]float64, dim)
	boxHi := make([]float64, dim)
	for j := 0; j < dim; j++ {
		obj := make([]float64, dim)
		obj[j] = 1
		minV, ok1 := lp.Minimize(obj, cons, lo, hi)
		maxV, ok2 := lp.Maximize(obj, cons, lo, hi)
		if !ok1 || !ok2 {
			return nil, ErrInconsistent
		}
		boxLo[j], boxHi[j] = minV, maxV
	}
	corners := enumerateVertices(all, boxLo, boxHi, dim)
	if len(corners) == 0 {
		return nil, ErrInconsistent
	}
	return geom.NewPolytope(boxLo, boxHi, hs, corners)
}

// enumerateVertices finds the polytope vertices: feasible intersection
// points of dim constraint hyperplanes (including the box facets). Suitable
// for the low dimensions (d <= 7) this codebase targets.
func enumerateVertices(hs []geom.Halfspace, lo, hi []float64, dim int) [][]float64 {
	// Assemble the full facet list: halfspaces + box sides.
	var facets []geom.Halfspace
	facets = append(facets, hs...)
	for j := 0; j < dim; j++ {
		a := make([]float64, dim)
		a[j] = 1
		facets = append(facets, geom.Halfspace{A: a, B: hi[j]})
		b := make([]float64, dim)
		b[j] = -1
		facets = append(facets, geom.Halfspace{A: b, B: -lo[j]})
	}
	feasible := func(p []float64) bool {
		for _, h := range facets {
			if h.Eval(p) > 1e-7 {
				return false
			}
		}
		return true
	}
	var out [][]float64
	seen := make(map[string]bool)
	var choose func(start int, picked []int)
	choose = func(start int, picked []int) {
		if len(picked) == dim {
			p, ok := solveIntersection(facets, picked, dim)
			if ok && feasible(p) {
				key := pointKey(p)
				if !seen[key] {
					seen[key] = true
					out = append(out, p)
				}
			}
			return
		}
		for i := start; i < len(facets); i++ {
			choose(i+1, append(picked, i))
		}
	}
	if dim == 0 {
		return [][]float64{{}}
	}
	choose(0, nil)
	return out
}

// solveIntersection solves the dim x dim linear system given by the picked
// facet hyperplanes, via Gaussian elimination with partial pivoting.
func solveIntersection(facets []geom.Halfspace, picked []int, dim int) ([]float64, bool) {
	a := make([][]float64, dim)
	b := make([]float64, dim)
	for i, fi := range picked {
		a[i] = append([]float64(nil), facets[fi].A...)
		b[i] = facets[fi].B
	}
	for col := 0; col < dim; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < dim; r++ {
			if abs(a[r][col]) > abs(a[best][col]) {
				best = r
			}
		}
		if abs(a[best][col]) < 1e-10 {
			return nil, false // singular: facets not independent
		}
		a[col], a[best] = a[best], a[col]
		b[col], b[best] = b[best], b[col]
		inv := 1 / a[col][col]
		for r := 0; r < dim; r++ {
			if r == col {
				continue
			}
			f := a[r][col] * inv
			for c := col; c < dim; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, dim)
	for i := 0; i < dim; i++ {
		x[i] = b[i] / a[i][i]
	}
	return x, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func pointKey(p []float64) string {
	b := make([]byte, 0, len(p)*8)
	for _, v := range p {
		u := int64(v * 1e7)
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(u>>uint(s)))
		}
	}
	return string(b)
}
