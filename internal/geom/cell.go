package geom

import (
	"roadsocial/internal/lp"
)

// Cell is a convex sub-polytope of the region R, produced by cutting R with
// score-comparison hyperplanes during arrangement construction. It is stored
// in H-representation: the region supplies the box (and any polytope extras),
// and Cuts lists the halfspaces accumulated by Partition splits.
//
// A Cell caches a witness point strictly interior to it (the Chebyshev
// center) so that, once an arrangement guarantees no relevant hyperplane
// crosses the cell, score comparisons inside the cell reduce to O(d)
// evaluations at the witness.
type Cell struct {
	Region *Region
	Cuts   []Halfspace

	witness   []float64
	radius    float64
	evaluated bool
	feasible  bool
}

// NewCell returns the cell covering all of region r.
func NewCell(r *Region) *Cell {
	return &Cell{Region: r}
}

// Dim returns the preference-domain dimension.
func (c *Cell) Dim() int { return c.Region.Dim() }

// constraints assembles the LP constraint list (region extras + cuts).
func (c *Cell) constraints() []lp.Constraint {
	cons := make([]lp.Constraint, 0, len(c.Region.Extra)+len(c.Cuts))
	for _, h := range c.Region.Extra {
		cons = append(cons, lp.Constraint{A: h.A, B: h.B})
	}
	for _, h := range c.Cuts {
		cons = append(cons, lp.Constraint{A: h.A, B: h.B})
	}
	return cons
}

// Feasible reports whether the cell is non-empty. The result is cached.
func (c *Cell) Feasible() bool {
	c.evaluate()
	return c.feasible
}

// Witness returns a point inside the cell maximizing the minimum slack (the
// Chebyshev center). It returns nil for infeasible cells. For cells that are
// full-dimensional the witness is strictly interior; for degenerate
// (lower-dimensional) cells it lies on the cell. The result is cached.
func (c *Cell) Witness() []float64 {
	c.evaluate()
	return c.witness
}

// Radius returns the Chebyshev radius of the cell: the largest ball around
// the witness contained in the cell, zero for degenerate cells.
func (c *Cell) Radius() float64 {
	c.evaluate()
	return c.radius
}

func (c *Cell) evaluate() {
	if c.evaluated {
		return
	}
	c.evaluated = true
	dim := c.Dim()
	if dim == 0 {
		c.feasible = true
		c.witness = []float64{}
		for _, h := range c.Cuts {
			if 0 > h.B+Eps {
				c.feasible = false
				c.witness = nil
				return
			}
		}
		return
	}
	// Chebyshev center: variables (w_1..w_dim, rad); maximize rad subject to
	//   h.A·w + ‖h.A‖·rad <= h.B   for each halfspace
	//   lo_j + rad <= w_j <= hi_j − rad  (as general constraints)
	//   0 <= rad <= maxSide
	r := c.Region
	maxSide := 0.0
	for j := range r.Lo {
		if s := r.Hi[j] - r.Lo[j]; s > maxSide {
			maxSide = s
		}
	}
	var cons []lp.Constraint
	addHS := func(h Halfspace) {
		a := make([]float64, dim+1)
		copy(a, h.A)
		a[dim] = h.Norm()
		cons = append(cons, lp.Constraint{A: a, B: h.B})
	}
	for _, h := range r.Extra {
		addHS(h)
	}
	for _, h := range c.Cuts {
		addHS(h)
	}
	for j := 0; j < dim; j++ {
		up := make([]float64, dim+1)
		up[j], up[dim] = 1, 1
		cons = append(cons, lp.Constraint{A: up, B: r.Hi[j]}) // w_j + rad <= hi_j
		dn := make([]float64, dim+1)
		dn[j], dn[dim] = -1, 1
		cons = append(cons, lp.Constraint{A: dn, B: -r.Lo[j]}) // -w_j + rad <= -lo_j
	}
	obj := make([]float64, dim+1)
	obj[dim] = -1 // maximize rad
	lo := make([]float64, dim+1)
	hi := make([]float64, dim+1)
	copy(lo, r.Lo)
	copy(hi, r.Hi)
	lo[dim], hi[dim] = 0, maxSide
	res := lp.Solve(obj, cons, lo, hi)
	if !res.Feasible {
		c.feasible = false
		return
	}
	c.feasible = true
	c.witness = res.X[:dim]
	c.radius = res.X[dim]
}

// Side classifies the cell against the supporting hyperplane of h.
type Side int8

const (
	// SideBelow: the cell lies entirely in h (A·w <= B).
	SideBelow Side = iota
	// SideAbove: the cell lies entirely in the complement closure (A·w >= B).
	SideAbove
	// SideSplit: the hyperplane properly crosses the cell.
	SideSplit
)

// Classify determines on which side of hyperplane h the cell lies. A fast
// path evaluates the hyperplane's range over the region's bounding box
// analytically (the box contains the cell), which resolves the vast
// majority of non-crossing hyperplanes without LP solves; only genuinely
// ambiguous cases pay for up to two LPs.
func (c *Cell) Classify(h Halfspace) Side {
	c.evaluate()
	if !c.feasible {
		return SideBelow // arbitrary; callers skip infeasible cells
	}
	norm := h.Norm()
	if norm <= Eps {
		if h.B >= -Eps {
			return SideBelow
		}
		return SideAbove
	}
	// Analytic bounding-box ranges: min/max of A·w over [Lo,Hi].
	boxMin, boxMax := -h.B, -h.B
	for j, a := range h.A {
		if a >= 0 {
			boxMin += a * c.Region.Lo[j]
			boxMax += a * c.Region.Hi[j]
		} else {
			boxMin += a * c.Region.Hi[j]
			boxMax += a * c.Region.Lo[j]
		}
	}
	if boxMax <= cellSideEps {
		return SideBelow
	}
	if boxMin >= -cellSideEps {
		return SideAbove
	}
	cons := c.constraints()
	dim := c.Dim()
	lo, hi := c.Region.Lo, c.Region.Hi
	if dim == 0 {
		if h.B >= -Eps {
			return SideBelow
		}
		return SideAbove
	}
	maxV, ok := lp.Maximize(h.A, cons, lo, hi)
	if !ok {
		return SideBelow
	}
	if maxV <= h.B+cellSideEps {
		return SideBelow
	}
	minV, _ := lp.Minimize(h.A, cons, lo, hi)
	if minV >= h.B-cellSideEps {
		return SideAbove
	}
	return SideSplit
}

// cellSideEps is the tolerance for declaring a cell entirely on one side of
// a hyperplane. Slightly looser than Eps so that hairline slivers created by
// floating-point noise are absorbed rather than split again.
const cellSideEps = 1e-7

// Split cuts the cell with the supporting hyperplane of h, returning the
// below part (cell ∩ {A·w <= B}) and the above part (cell ∩ {A·w >= B}).
// Either may be infeasible; callers should check Feasible.
func (c *Cell) Split(h Halfspace) (below, above *Cell) {
	below = &Cell{Region: c.Region, Cuts: appendHS(c.Cuts, h)}
	above = &Cell{Region: c.Region, Cuts: appendHS(c.Cuts, h.Negate())}
	return below, above
}

// WithCut returns a copy of the cell with one more halfspace constraint.
func (c *Cell) WithCut(h Halfspace) *Cell {
	return &Cell{Region: c.Region, Cuts: appendHS(c.Cuts, h)}
}

func appendHS(cuts []Halfspace, h Halfspace) []Halfspace {
	out := make([]Halfspace, len(cuts)+1)
	copy(out, cuts)
	out[len(cuts)] = h
	return out
}

// MinOf returns the minimum of score s over the cell and feasibility.
func (c *Cell) MinOf(s Score) (float64, bool) {
	if c.Dim() == 0 {
		return s.Const, c.Feasible()
	}
	v, ok := lp.Minimize(s.Coef, c.constraints(), c.Region.Lo, c.Region.Hi)
	return v + s.Const, ok
}

// MaxOf returns the maximum of score s over the cell and feasibility.
func (c *Cell) MaxOf(s Score) (float64, bool) {
	if c.Dim() == 0 {
		return s.Const, c.Feasible()
	}
	v, ok := lp.Maximize(s.Coef, c.constraints(), c.Region.Lo, c.Region.Hi)
	return v + s.Const, ok
}

// DominatesIn reports whether score s >= t throughout the (feasible) cell.
func (c *Cell) DominatesIn(s, t Score) bool {
	diff := s.Sub(t)
	minV, ok := c.MinOf(diff)
	if !ok {
		return false
	}
	return minV >= -cellSideEps
}
