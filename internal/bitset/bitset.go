// Package bitset provides a compact fixed-capacity bit set used for
// reachability (ancestor/descendant) bookkeeping in the r-dominance graph.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The zero value of a Set created by New is
// empty.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or sets s to s ∪ t. The sets must have the same capacity.
func (s *Set) Or(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// AndNot sets s to s \ t.
func (s *Set) AndNot(t *Set) {
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// IntersectsWith reports whether s ∩ t is non-empty.
func (s *Set) IntersectsWith(t *Set) bool {
	for i, w := range t.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ t|.
func (s *Set) IntersectionCount(t *Set) int {
	c := 0
	for i, w := range t.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...), n: s.n}
}

// CopyFrom overwrites s with the contents of t, reusing s's storage when the
// capacities match (the pooled-clone fast path of the query engines).
func (s *Set) CopyFrom(t *Set) {
	if cap(s.words) < len(t.words) {
		s.words = make([]uint64, len(t.words))
	}
	s.words = s.words[:len(t.words)]
	copy(s.words, t.words)
	s.n = t.n
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach invokes fn on every set bit in increasing order; fn returning
// false stops the iteration.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*64 + b) {
				return
			}
			w &= w - 1
		}
	}
}
