package dataset

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"

	"roadsocial/internal/mac"
	"roadsocial/internal/road"
)

// RSNAPv2: the zero-copy snapshot format. The payload is the in-memory
// representation — the road graph's CSR arrays and the G-tree's flat slabs
// as raw little-endian bytes, 8-byte aligned — so loading a file is mmap +
// header validation + slice fixup rather than element-by-element decoding.
// Full byte-level layout in docs/snapshot.md; in short:
//
//	off  0  magic "RSNAPv2\n"                      (8 bytes)
//	off  8  fileSize  uint64 LE                    (whole file, header included)
//	off 16  crc32     uint32 LE                    (IEEE, over bytes [24:fileSize))
//	off 20  sectionCount uint32 LE
//	off 24  section table: sectionCount × 24 bytes
//	        kind uint32 | reserved uint32 | off uint64 | len uint64
//	...     sections, each starting at an 8-byte-aligned offset,
//	        zero-padded up to the next section
//
// Variable-width content (the social graph, locations, G-tree topology)
// keeps the v1 varint codec inside opaque byte sections; only the big flat
// arrays get the raw-slab treatment — they are where the decode time and
// the allocations were.

// snapshotMagicV2 identifies version 2 of the format.
const snapshotMagicV2 = "RSNAPv2\n"

// Section kinds. A v2 file carries sections 1–5 always, 6–8 when the
// network has a G-tree oracle, and 9 when the dataset has a non-zero
// mutation version; kinds outside this set are rejected (the format is
// versioned by magic, not by optional sections).
const (
	secSocial  = 1 // social graph, v1 varint codec (opaque bytes)
	secLocs    = 2 // user locations, v1 varint codec (opaque bytes)
	secRoadOff = 3 // road CSR offsets, int64[n+1]
	secRoadNbr = 4 // road CSR neighbor slab, int32[2m]
	secRoadWgt = 5 // road CSR weight slab, float64[2m]
	secGTMeta  = 6 // G-tree topology, varint codec (opaque bytes)
	secGTI32   = 7 // G-tree int32 slab (leaf table + per-node lists)
	secGTF64   = 8 // G-tree float64 slab (per-node distLeaf + mat)
	secVersion = 9 // dataset mutation version stamp, uint64 LE
)

const v2HeaderLen = 24
const v2TableEntryLen = 24

// hostLittleEndian reports whether the running machine stores integers
// little-endian. On big-endian hosts the loaders fall back to decode-copy
// and the writer to encode-copy; files are little-endian everywhere.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// alignedBuffer returns an n-byte slice whose base address is 8-byte
// aligned (it is backed by a []uint64), so slab views taken over it are
// correctly aligned for int64/float64 without depending on allocator luck.
func alignedBuffer(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

func align8(v uint64) uint64 { return (v + 7) &^ 7 }

// --- raw slab views (writer side) ---

// i64Bytes, i32Bytes, f64Bytes view a slab as its on-disk bytes. On a
// little-endian host the view is zero-copy (the file bytes ARE the array);
// on big-endian hosts the slab is re-encoded.
func i64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	b := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	return b
}

func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	b := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	return b
}

func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	b := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[i*8:], math64bits(v))
	}
	return b
}

func math64bits(v float64) uint64 { return *(*uint64)(unsafe.Pointer(&v)) }

// --- raw slab views (loader side) ---

// viewI64 interprets section bytes as an int64 slab. Zero-copy when the
// host is little-endian and the base is 8-aligned (both hold for mmap'ed
// and alignedBuffer-backed data); decode-copy otherwise.
func viewI64(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("dataset: int64 section of %d bytes not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

func viewI32(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("dataset: int32 section of %d bytes not a multiple of 4", len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

func viewF64(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("dataset: float64 section of %d bytes not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		u := binary.LittleEndian.Uint64(b[i*8:])
		out[i] = *(*float64)(unsafe.Pointer(&u))
	}
	return out, nil
}

// --- writer ---

// writeSnapshotV2 serializes the network in the sectioned flat layout. Two
// passes over the same section list — one through the CRC, one through the
// writer — keep the whole thing streaming: nothing is concatenated, and on
// a little-endian host the big slabs go straight from the live arrays to w.
func writeSnapshotV2(w io.Writer, net *mac.Network, version uint64) error {
	if err := net.Validate(); err != nil {
		return err
	}
	var socialBuf bytes.Buffer
	if err := encodeSocial(&socialBuf, net.Social); err != nil {
		return err
	}
	var locBuf bytes.Buffer
	for _, l := range net.Locs {
		if err := road.EncodeLocation(&locBuf, l); err != nil {
			return err
		}
	}
	off, nbr, wgt := net.Road.CSR()
	type section struct {
		kind uint32
		data []byte
	}
	sections := []section{
		{secSocial, socialBuf.Bytes()},
		{secLocs, locBuf.Bytes()},
		{secRoadOff, i64Bytes(off)},
		{secRoadNbr, i32Bytes(nbr)},
		{secRoadWgt, f64Bytes(wgt)},
	}
	if gt, ok := net.Oracle.(*road.GTree); ok {
		flat := road.FlattenGTree(gt)
		sections = append(sections,
			section{secGTMeta, flat.Meta},
			section{secGTI32, i32Bytes(flat.I32)},
			section{secGTF64, f64Bytes(flat.F64)},
		)
	}
	if version > 0 {
		// The version stamp is omitted at zero so never-mutated snapshots
		// stay byte-identical to pre-stamp writers.
		var vb [8]byte
		binary.LittleEndian.PutUint64(vb[:], version)
		sections = append(sections, section{secVersion, vb[:]})
	}

	// Lay out the section table: each section starts 8-aligned, padded with
	// zeros up to the next. The table itself ends at 24 + 24·count, which
	// is already a multiple of 8.
	table := make([]byte, len(sections)*v2TableEntryLen)
	pads := make([]int, len(sections))
	cursor := uint64(v2HeaderLen + len(table))
	for i, s := range sections {
		e := table[i*v2TableEntryLen:]
		binary.LittleEndian.PutUint32(e[0:4], s.kind)
		binary.LittleEndian.PutUint32(e[4:8], 0)
		binary.LittleEndian.PutUint64(e[8:16], cursor)
		binary.LittleEndian.PutUint64(e[16:24], uint64(len(s.data)))
		end := cursor + uint64(len(s.data))
		cursor = align8(end)
		pads[i] = int(cursor - end)
	}
	fileSize := cursor

	var zeros [8]byte
	crc := crc32.NewIEEE()
	crc.Write(table)
	for i, s := range sections {
		crc.Write(s.data)
		crc.Write(zeros[:pads[i]])
	}

	var header [v2HeaderLen]byte
	copy(header[0:8], snapshotMagicV2)
	binary.LittleEndian.PutUint64(header[8:16], fileSize)
	binary.LittleEndian.PutUint32(header[16:20], crc.Sum32())
	binary.LittleEndian.PutUint32(header[20:24], uint32(len(sections)))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	if _, err := w.Write(table); err != nil {
		return err
	}
	for i, s := range sections {
		if _, err := w.Write(s.data); err != nil {
			return err
		}
		if _, err := w.Write(zeros[:pads[i]]); err != nil {
			return err
		}
	}
	return nil
}

// --- loader ---

// readSnapshotV2 is the buffered entry point (HTTP bodies, shard moves):
// the caller consumed the 8 magic bytes; the rest is read — CopyN into a
// growing buffer, so a crafted size field costs bytes actually sent — then
// copied once into an 8-aligned buffer and loaded in place. Zero-copy in
// the mmap sense is reserved for ReadSnapshotFile; here the single aligned
// copy replaces all of v1's per-element decoding and allocation.
func readSnapshotV2(r io.Reader, maxBytes int64) (*mac.Network, uint64, error) {
	var rest [16]byte
	if _, err := io.ReadFull(r, rest[:]); err != nil {
		return nil, 0, fmt.Errorf("dataset: snapshot header: %w", err)
	}
	fileSize := binary.LittleEndian.Uint64(rest[0:8])
	if fileSize < v2HeaderLen {
		return nil, 0, fmt.Errorf("dataset: snapshot declares %d bytes, below the %d-byte header", fileSize, v2HeaderLen)
	}
	if fileSize > uint64(maxBytes) {
		return nil, 0, fmt.Errorf("dataset: snapshot of %d bytes exceeds the %d limit", fileSize, maxBytes)
	}
	var body bytes.Buffer
	if n, err := io.CopyN(&body, r, int64(fileSize-v2HeaderLen)); err != nil {
		return nil, 0, fmt.Errorf("dataset: snapshot truncated at byte %d of %d: %w", uint64(n)+v2HeaderLen, fileSize, err)
	}
	data := alignedBuffer(int(fileSize))
	copy(data[0:8], snapshotMagicV2)
	copy(data[8:v2HeaderLen], rest[:])
	copy(data[v2HeaderLen:], body.Bytes())
	return loadSnapshotV2(data, nil)
}

// loadSnapshotV2 validates a complete v2 image and builds the network over
// it without copying the flat sections: the CSR arrays and G-tree slabs are
// unsafe.Slice views into data (when the host is little-endian; decode-copy
// otherwise). pin, when non-nil, is attached to the road graph so whatever
// owns data — the mmap holder — stays reachable for as long as any search
// can still reach the loaded network.
//
// Everything is validated before use: sizes, alignment, CRC, section
// bounds, and (inside GraphFromCSR / GTreeFromFlat) every value a traversal
// will index by. A corrupted file errors out cleanly; it never panics and
// never maps garbage into a live dataset.
func loadSnapshotV2(data []byte, pin any) (*mac.Network, uint64, error) {
	if len(data) < v2HeaderLen {
		return nil, 0, fmt.Errorf("dataset: snapshot of %d bytes, below the %d-byte header", len(data), v2HeaderLen)
	}
	if string(data[0:8]) != snapshotMagicV2 {
		return nil, 0, fmt.Errorf("dataset: not a v2 snapshot: magic %q", data[0:8])
	}
	fileSize := binary.LittleEndian.Uint64(data[8:16])
	if fileSize != uint64(len(data)) {
		return nil, 0, fmt.Errorf("dataset: snapshot declares %d bytes, file has %d", fileSize, len(data))
	}
	if got, want := crc32.ChecksumIEEE(data[v2HeaderLen:]), binary.LittleEndian.Uint32(data[16:20]); got != want {
		return nil, 0, fmt.Errorf("dataset: snapshot checksum mismatch (got %08x, want %08x)", got, want)
	}
	count := binary.LittleEndian.Uint32(data[20:24])
	tableEnd := uint64(v2HeaderLen) + uint64(count)*v2TableEntryLen
	if count == 0 || tableEnd > fileSize {
		return nil, 0, fmt.Errorf("dataset: snapshot section table of %d entries exceeds the %d-byte file", count, fileSize)
	}
	secs := make(map[uint32][]byte, count)
	for i := uint32(0); i < count; i++ {
		e := data[v2HeaderLen+uint64(i)*v2TableEntryLen:]
		kind := binary.LittleEndian.Uint32(e[0:4])
		off := binary.LittleEndian.Uint64(e[8:16])
		length := binary.LittleEndian.Uint64(e[16:24])
		if kind < secSocial || kind > secVersion {
			return nil, 0, fmt.Errorf("dataset: snapshot section %d has unknown kind %d", i, kind)
		}
		if _, dup := secs[kind]; dup {
			return nil, 0, fmt.Errorf("dataset: snapshot carries duplicate section kind %d", kind)
		}
		if off%8 != 0 {
			return nil, 0, fmt.Errorf("dataset: snapshot section kind %d at misaligned offset %d", kind, off)
		}
		if off < tableEnd || off > fileSize || length > fileSize-off {
			return nil, 0, fmt.Errorf("dataset: snapshot section kind %d spans [%d,%d+%d) outside the %d-byte file", kind, off, off, length, fileSize)
		}
		secs[kind] = data[off : off+length : off+length]
	}
	need := func(kind uint32, what string) ([]byte, error) {
		s, ok := secs[kind]
		if !ok {
			return nil, fmt.Errorf("dataset: snapshot missing %s section (kind %d)", what, kind)
		}
		return s, nil
	}

	var version uint64
	if vs, ok := secs[secVersion]; ok {
		if len(vs) != 8 {
			return nil, 0, fmt.Errorf("dataset: snapshot version section of %d bytes, want 8", len(vs))
		}
		version = binary.LittleEndian.Uint64(vs)
	}

	socialSec, err := need(secSocial, "social")
	if err != nil {
		return nil, 0, err
	}
	sr := bytes.NewReader(socialSec)
	gs, err := decodeSocial(sr)
	if err != nil {
		return nil, 0, err
	}
	if sr.Len() != 0 {
		return nil, 0, fmt.Errorf("dataset: snapshot social section carries %d trailing bytes", sr.Len())
	}

	offSec, err := need(secRoadOff, "road offsets")
	if err != nil {
		return nil, 0, err
	}
	nbrSec, err := need(secRoadNbr, "road neighbors")
	if err != nil {
		return nil, 0, err
	}
	wgtSec, err := need(secRoadWgt, "road weights")
	if err != nil {
		return nil, 0, err
	}
	off, err := viewI64(offSec)
	if err != nil {
		return nil, 0, err
	}
	nbr, err := viewI32(nbrSec)
	if err != nil {
		return nil, 0, err
	}
	wgt, err := viewF64(wgtSec)
	if err != nil {
		return nil, 0, err
	}
	gr, err := road.GraphFromCSR(off, nbr, wgt)
	if err != nil {
		return nil, 0, err
	}
	if pin != nil {
		gr.Pin(pin)
	}

	locSec, err := need(secLocs, "locations")
	if err != nil {
		return nil, 0, err
	}
	lr := bytes.NewReader(locSec)
	locs := make([]road.Location, gs.N())
	for i := range locs {
		if locs[i], err = road.DecodeLocation(lr, gr); err != nil {
			return nil, 0, fmt.Errorf("dataset: snapshot location %d: %w", i, err)
		}
	}
	if lr.Len() != 0 {
		return nil, 0, fmt.Errorf("dataset: snapshot location section carries %d trailing bytes", lr.Len())
	}

	net := &mac.Network{Social: gs, Road: gr, Locs: locs}
	if metaSec, ok := secs[secGTMeta]; ok {
		i32Sec, err := need(secGTI32, "gtree int32 slab")
		if err != nil {
			return nil, 0, err
		}
		f64Sec, err := need(secGTF64, "gtree float64 slab")
		if err != nil {
			return nil, 0, err
		}
		i32, err := viewI32(i32Sec)
		if err != nil {
			return nil, 0, err
		}
		f64, err := viewF64(f64Sec)
		if err != nil {
			return nil, 0, err
		}
		gt, err := road.GTreeFromFlat(gr, road.FlatGTree{Meta: metaSec, I32: i32, F64: f64})
		if err != nil {
			return nil, 0, err
		}
		net.Oracle = gt
	} else if _, ok := secs[secGTI32]; ok {
		return nil, 0, fmt.Errorf("dataset: snapshot carries gtree slabs without topology")
	} else if _, ok := secs[secGTF64]; ok {
		return nil, 0, fmt.Errorf("dataset: snapshot carries gtree slabs without topology")
	}
	return net, version, net.Validate()
}
