// Quickstart: build a small road-social network by hand, run both MAC
// search algorithms, and print the partition-wise results. This is the
// running example of the paper (Fig. 1-2): seven users v1..v7 with
// 3-dimensional attributes, query Q = {v2,v3,v6}, k = 3, t = 9, and
// preference region R = [0.1,0.5] x [0.2,0.4].
package main

import (
	"fmt"
	"log"

	"roadsocial"
)

func main() {
	// Social network: K4 on {v2,v3,v6,v7}; v1 ~ v2,v3,v7; v4 ~ v2,v3,v5;
	// v5 ~ v2,v4,v6. Vertex ids are zero-based (v1 = 0).
	sb := roadsocial.NewSocialBuilder(7, 3)
	for _, e := range [][2]int{
		{1, 2}, {1, 5}, {1, 6}, {2, 5}, {2, 6}, {5, 6},
		{0, 1}, {0, 2}, {0, 6},
		{3, 1}, {3, 2}, {3, 4},
		{4, 1}, {4, 5},
	} {
		sb.AddEdge(e[0], e[1])
	}
	attrs := [][]float64{
		{8.8, 3.6, 2.2}, {5.9, 6.2, 6.0}, {2.8, 5.6, 5.1}, {9.0, 3.3, 3.4},
		{5.0, 7.6, 3.1}, {5.2, 8.3, 4.3}, {2.1, 5.0, 5.1},
	}
	for v, x := range attrs {
		sb.SetAttrs(v, x)
		sb.SetLabel(v, fmt.Sprintf("v%d", v+1))
	}
	gs, err := sb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Road network: weights chosen so that dist(r7,r6)=7 and dist(r3,r6)=9.
	gr := roadsocial.NewRoadGraph(7)
	for _, e := range []struct {
		u, v int
		w    float64
	}{
		{2, 6, 4}, {6, 5, 7}, {1, 6, 6}, {1, 2, 3}, {1, 5, 8}, {2, 5, 9},
		{0, 1, 1}, {3, 1, 1}, {4, 1, 1},
	} {
		if err := gr.AddEdge(e.u, e.v, e.w); err != nil {
			log.Fatal(err)
		}
	}
	locs := make([]roadsocial.Location, 7)
	for i := range locs {
		locs[i] = roadsocial.VertexLocation(i)
	}
	net := &roadsocial.Network{Social: gs, Road: gr, Locs: locs}

	region, err := roadsocial.NewRegion([]float64{0.1, 0.2}, []float64{0.5, 0.4})
	if err != nil {
		log.Fatal(err)
	}
	query := &roadsocial.Query{Q: []int32{1, 2, 5}, K: 3, T: 9, Region: region, J: 2}

	fmt.Println("== Global search (exact, every weight vector in R) ==")
	res, err := roadsocial.GlobalSearch(net, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maximal (k,t)-core: %s\n", names(gs, res.KTCore))
	fmt.Printf("partitions of R: %d\n", len(res.Cells))
	for _, ncmac := range dedup(res) {
		fmt.Printf("  non-contained MAC: %s\n", names(gs, ncmac))
	}

	// Example 3 of the paper: a tiny change in the weight vector flips the
	// answer.
	for _, w := range [][]float64{{0.2, 0.3}, {0.19, 0.3}} {
		cell := res.ResultAt(w)
		fmt.Printf("top-1 at w=%v: %s  (score %.2f)\n",
			w, names(gs, cell.NCMAC()), roadsocial.CommunityScore(net, cell.NCMAC(), w))
	}

	fmt.Println("\n== Local search (fast, sound) ==")
	lres, err := roadsocial.LocalSearch(net, query, roadsocial.LocalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, ncmac := range dedup(lres) {
		fmt.Printf("  non-contained MAC: %s\n", names(gs, ncmac))
	}
	fmt.Printf("stats: |H_k^t|=%d, hyperplanes=%d, candidates=%d\n",
		lres.Stats.KTCoreSize, lres.Stats.Hyperplanes, lres.Stats.Candidates)
}

func names(gs *roadsocial.SocialGraph, c roadsocial.Community) string {
	s := "{"
	for i, v := range c {
		if i > 0 {
			s += ", "
		}
		s += gs.Label(int(v))
	}
	return s + "}"
}

func dedup(res *roadsocial.Result) []roadsocial.Community {
	return res.NCMACs()
}
