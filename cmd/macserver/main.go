// Command macserver is the long-lived MAC query service: it loads one or
// more road-social datasets and their G-tree indexes once, then serves
// GlobalSearch/LocalSearch/KTCore requests over HTTP with a shared
// prepared-state cache and admission control (see internal/service).
//
// Datasets come either from the synthetic catalog of the experiment harness
// (Table II analogues) or from text files in the cmd/macsearch formats:
//
//	macserver -addr=:8080 -datasets=SF+Slashdot,FL+Lastfm -scale=small
//	macserver -addr=:8080 -name=mycity \
//	    -social=soc.txt -attrs=attrs.txt -road=road.txt -locs=locs.txt
//
// Query it with JSON:
//
//	curl -s localhost:8080/v1/search -d '{
//	    "dataset": "SF+Slashdot", "q": [3, 7], "k": 4, "t": 2500,
//	    "region": {"lo": [0.2, 0.2], "hi": [0.25, 0.25]},
//	    "algo": "global", "timeout_ms": 2000}'
//	curl -s localhost:8080/v1/ktcore -d '{"dataset": "SF+Slashdot", "q": [3], "k": 4, "t": 2500}'
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/stats
//
// Repeated requests sharing (dataset, Q, k, t) reuse one prepared state:
// only the first pays the road-network range query and r-dominance build.
// When in-flight and queued work exceed the bounds, requests are rejected
// with 429 rather than piling up; requests that exceed their deadline are
// abandoned mid-search (504) via Query.Cancel.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"roadsocial"
	"roadsocial/internal/dataset"
	"roadsocial/internal/exp"
	"roadsocial/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		datasets = flag.String("datasets", "SF+Slashdot", "comma-separated synthetic dataset names from the experiment catalog (see internal/exp), or empty for none")
		scale    = flag.String("scale", "small", "synthetic dataset scale: tiny, small, medium")
		d        = flag.Int("d", 3, "synthetic attribute dimensionality")
		seed     = flag.Int64("seed", 20210421, "synthetic dataset seed")
		gtree    = flag.Bool("gtree", true, "index road networks with a G-tree")

		name       = flag.String("name", "", "name for a file-loaded dataset")
		socialPath = flag.String("social", "", "social edge list file")
		attrsPath  = flag.String("attrs", "", "attribute file")
		roadPath   = flag.String("road", "", "road edge list file")
		locsPath   = flag.String("locs", "", "user location file")

		maxInFlight = flag.Int("max-inflight", 0, "concurrent searches; 0 = GOMAXPROCS")
		maxQueue    = flag.Int("max-queue", 0, "waiting requests beyond in-flight; 0 = 4x in-flight")
		cacheCap    = flag.Int("cache", 256, "prepared-state cache entries")
		timeout     = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		parallelism = flag.Int("parallelism", 0, "per-search workers; 0 = GOMAXPROCS")
	)
	flag.Parse()

	srv := service.New(service.Config{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		CacheCapacity:  *cacheCap,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Parallelism:    *parallelism,
	})

	sc, err := parseScale(*scale)
	if err != nil {
		log.Fatal(err)
	}
	if *datasets != "" {
		for _, dsName := range strings.Split(*datasets, ",") {
			dsName = strings.TrimSpace(dsName)
			spec, err := exp.DatasetByName(dsName)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			in, err := spec.Build(sc, *d, *seed)
			if err != nil {
				log.Fatal(err)
			}
			if *gtree {
				in.Net.Oracle = roadsocial.BuildGTree(in.Net.Road, 0)
			}
			if err := srv.AddDataset(dsName, in.Net); err != nil {
				log.Fatal(err)
			}
			log.Printf("dataset %s: %d users, %d friendships, %d road vertices (t_default=%g, loaded in %s)",
				dsName, in.Net.Social.N(), in.Net.Social.M(), in.Net.Road.N(),
				in.TDefault, time.Since(start).Round(time.Millisecond))
		}
	}
	if *socialPath != "" {
		if *name == "" {
			log.Fatal("file-loaded dataset requires -name")
		}
		net, err := loadFiles(*socialPath, *attrsPath, *roadPath, *locsPath)
		if err != nil {
			log.Fatal(err)
		}
		if *gtree {
			net.Oracle = roadsocial.BuildGTree(net.Road, 0)
		}
		if err := srv.AddDataset(*name, net); err != nil {
			log.Fatal(err)
		}
		log.Printf("dataset %s: %d users, %d friendships, %d road vertices (files)",
			*name, net.Social.N(), net.Social.M(), net.Road.N())
	}
	if len(srv.Datasets()) == 0 {
		log.Fatal("no datasets loaded; pass -datasets or -social/-attrs/-road/-locs")
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		log.Print("shutting down")
		_ = hs.Close()
	}()
	log.Printf("macserver listening on %s (datasets: %s)", *addr, strings.Join(srv.Datasets(), ", "))
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

func parseScale(s string) (exp.Scale, error) {
	switch s {
	case "tiny":
		return exp.Tiny, nil
	case "small":
		return exp.Small, nil
	case "medium":
		return exp.Medium, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want tiny, small, or medium)", s)
	}
}

func loadFiles(socialPath, attrsPath, roadPath, locsPath string) (*roadsocial.Network, error) {
	sf, err := os.Open(socialPath)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	af, err := os.Open(attrsPath)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	rf, err := os.Open(roadPath)
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	lf, err := os.Open(locsPath)
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	return dataset.ReadNetwork(sf, af, nil, rf, lf)
}
