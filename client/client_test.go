package client_test

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"roadsocial/client"
	"roadsocial/internal/gen"
	"roadsocial/internal/mac"
	"roadsocial/internal/service"
	"roadsocial/internal/shard"
)

// liveServer spins up a real service over a small synthetic network and
// returns the SDK pointed at it plus a feasible workload.
func liveServer(t testing.TB) (*client.Client, []int32, int, float64) {
	t.Helper()
	net, q, k, tt := testNetwork(t)
	srv := service.New(service.Config{
		LoadSpec: func(string, *client.DatasetSpec) (*mac.Network, uint64, error) { return net, 0, nil },
	})
	if err := srv.AddDataset("live", net); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL), q, k, tt
}

func testNetwork(t testing.TB) (*mac.Network, []int32, int, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	net, err := gen.Network(gen.NetworkConfig{
		Social: gen.SocialConfig{
			N: 150, D: 3, AttachEdges: 3,
			Communities: 3, CommunitySize: 30, CommunityP: 0.6,
		},
		RoadRows: 10, RoadCols: 10,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const k, tt = 4, 900.0
	qs := gen.Queries(net, k, tt, 3, 1, rng)
	if len(qs) == 0 {
		t.Fatal("no feasible query in test network")
	}
	return net, qs[0], k, tt
}

var testRegion = &client.RegionSpec{Lo: []float64{0.2, 0.2}, Hi: []float64{0.25, 0.25}}

// TestSDKRoundTrips drives every SDK method against a live server: search
// (cold miss then warm hit), ktcore, batch, dataset lifecycle, stats, and
// health — the full typed contract end to end.
func TestSDKRoundTrips(t *testing.T) {
	sdk, q, k, tt := liveServer(t)
	ctx := context.Background()

	req := &client.SearchRequest{Q: q, K: k, T: tt, Region: testRegion}
	cold, err := sdk.Search(ctx, "live", req)
	if err != nil {
		t.Fatalf("cold search: %v", err)
	}
	if cold.Dataset != "live" || cold.Cache != client.CacheMiss || cold.KTCoreSize == 0 || cold.Partitions == 0 {
		t.Fatalf("cold = %+v", cold)
	}
	if cold.Stats == nil || cold.Stats.KTCoreSize != cold.KTCoreSize {
		t.Fatalf("cold stats = %+v", cold.Stats)
	}
	warm, err := sdk.Search(ctx, "live", req)
	if err != nil {
		t.Fatalf("warm search: %v", err)
	}
	if warm.Cache != client.CacheHit || warm.KTCoreSize != cold.KTCoreSize {
		t.Fatalf("warm = %+v", warm)
	}

	kt, err := sdk.KTCore(ctx, "live", &client.SearchRequest{Q: q, K: k, T: tt})
	if err != nil {
		t.Fatalf("ktcore: %v", err)
	}
	if len(kt.KTCore) != kt.KTCoreSize || kt.KTCoreSize != cold.KTCoreSize {
		t.Fatalf("ktcore = %+v", kt)
	}

	truss, err := sdk.KTCore(ctx, "live", &client.SearchRequest{Q: q, K: 3, T: tt, Algo: client.AlgoTruss})
	if err != nil {
		t.Fatalf("truss ktcore: %v", err)
	}
	if truss.Algo != client.AlgoTruss {
		t.Fatalf("truss = %+v", truss)
	}

	batch, err := sdk.Batch(ctx, &client.BatchRequest{Items: []client.BatchItem{
		{SearchRequest: client.SearchRequest{Dataset: "live", Q: q, K: k, T: tt, Region: testRegion}},
		{Op: client.OpKTCore, SearchRequest: client.SearchRequest{Dataset: "live", Q: q, K: k, T: tt}},
	}})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if batch.OK != 2 || batch.Failed != 0 || len(batch.Items) != 2 {
		t.Fatalf("batch = %+v", batch)
	}
	if batch.Items[0].Response.Partitions != cold.Partitions {
		t.Fatalf("batch search differs from direct search: %+v", batch.Items[0].Response)
	}

	info, err := sdk.CreateDataset(ctx, "second", &client.DatasetSpec{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if info.Dataset != "second" || info.Users == 0 {
		t.Fatalf("create info = %+v", info)
	}
	if _, err := sdk.Search(ctx, "second", req); err != nil {
		t.Fatalf("search on created dataset: %v", err)
	}
	if err := sdk.DeleteDataset(ctx, "second"); err != nil {
		t.Fatalf("delete: %v", err)
	}

	st, err := sdk.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Requests == 0 || st.Cache.Hits == 0 || st.Latency.Count == 0 || len(st.Latency.Buckets) == 0 {
		t.Fatalf("stats = %+v", st)
	}
	h, err := sdk.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Status != "ok" || len(h.Datasets) != 1 || h.Datasets[0] != "live" {
		t.Fatalf("health = %+v", h)
	}

	// Typed errors carry the status.
	if _, err := sdk.Search(ctx, "ghost", req); client.StatusOf(err) != http.StatusNotFound {
		t.Fatalf("ghost dataset: err=%v, want 404", err)
	}
	if _, err := sdk.Search(ctx, "live", &client.SearchRequest{Q: q, K: 0, T: tt, Region: testRegion}); client.StatusOf(err) != http.StatusBadRequest {
		t.Fatalf("invalid k: err=%v, want 400", err)
	}
}

// TestSDKAgainstRouter: the same SDK calls work unchanged against a shard
// router — Stats normalizes the aggregated payload and Health unions the
// per-shard dataset lists.
func TestSDKAgainstRouter(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	cfg := service.Config{
		LoadSpec: func(string, *client.DatasetSpec) (*mac.Network, uint64, error) { return net, 0, nil },
	}
	locals := []shard.Backend{
		shard.NewLocal("shard-0", service.New(cfg)),
		shard.NewLocal("shard-1", service.New(cfg)),
	}
	rt, err := shard.NewRouter(locals, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	ctx := context.Background()
	sdk := client.New(ts.URL)
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if _, err := sdk.CreateDataset(ctx, name, &client.DatasetSpec{}); err != nil {
			t.Fatal(err)
		}
		if _, err := sdk.Search(ctx, name, &client.SearchRequest{Q: q, K: k, T: tt, Region: testRegion}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	st, err := sdk.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 3 || len(st.Datasets) != 3 {
		t.Fatalf("router stats = %+v", st)
	}
	h, err := sdk.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Datasets) != 3 {
		t.Fatalf("router health = %+v", h)
	}
}

// TestHotKeysRoundTrip: keys prepared by ktcore/search surface through GET
// /v1/datasets/{name}/hotkeys in replayable form — the working set a router
// uses to pre-warm a freshly synced replica.
func TestHotKeysRoundTrip(t *testing.T) {
	sdk, q, k, tt := liveServer(t)
	ctx := context.Background()
	if _, err := sdk.KTCore(ctx, "live", &client.SearchRequest{Q: q, K: k, T: tt}); err != nil {
		t.Fatal(err)
	}
	hot, err := sdk.HotKeys(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	if hot.Dataset != "live" || len(hot.Keys) == 0 {
		t.Fatalf("hot keys = %+v, want at least the ktcore key", hot)
	}
	found := false
	for _, hk := range hot.Keys {
		if hk.K == k && hk.T == tt && len(hk.Q) == len(q) && hk.Algo == client.AlgoGlobal {
			found = true
		}
	}
	if !found {
		t.Fatalf("ktcore key missing from hot keys %+v", hot.Keys)
	}
	if _, err := sdk.HotKeys(ctx, "ghost"); !client.IsNotFound(err) {
		t.Fatalf("hot keys of unknown dataset: err=%v, want typed not_found", err)
	}
}
