// Package road implements the road-network substrate: an undirected
// weighted graph modelling road segments, user locations lying on vertices
// or edges, Dijkstra shortest paths with distance bounds, the range query of
// Lemma 1 (filter users whose query distance exceeds t), and a G-tree style
// hierarchical index (recursive graph bisection with border-to-border
// distance matrices) that accelerates repeated range queries, standing in
// for the G-tree/G*-tree indexes the paper cites.
package road

import (
	"container/heap"
	"fmt"
	"math"
)

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

type halfEdge struct {
	to int32
	w  float64
}

// Graph is an undirected weighted road network. Vertices are dense ints.
type Graph struct {
	adj [][]halfEdge
	m   int
}

// NewGraph creates a road network with n vertices and no edges.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]halfEdge, n)}
}

// AddEdge inserts an undirected road segment with non-negative cost w.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u == v {
		return fmt.Errorf("road: self-loop at %d", u)
	}
	if w < 0 {
		return fmt.Errorf("road: negative edge weight %g on (%d,%d)", w, u, v)
	}
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return fmt.Errorf("road: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj))
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: int32(v), w: w})
	g.adj[v] = append(g.adj[v], halfEdge{to: int32(u), w: w})
	g.m++
	return nil
}

// N returns the number of road vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of road segments.
func (g *Graph) M() int { return g.m }

// Edges invokes fn once per undirected edge (u < v).
func (g *Graph) Edges(fn func(u, v int, w float64)) {
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if int32(u) < e.to {
				fn(u, int(e.to), e.w)
			}
		}
	}
}

// EdgeWeight returns the weight of edge (u,v), or (0,false) if absent.
func (g *Graph) EdgeWeight(u, v int) (float64, bool) {
	for _, e := range g.adj[u] {
		if int(e.to) == v {
			return e.w, true
		}
	}
	return 0, false
}

// Degree returns the number of road segments incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Location is a spatial point in the road network: either exactly a vertex,
// or a point on edge (U,V) at distance Off from U (0 <= Off <= edge weight).
type Location struct {
	U, V int32
	Off  float64
	w    float64 // cached edge weight; 0 for vertex locations
}

// VertexLocation places a point on road vertex v.
func VertexLocation(v int) Location { return Location{U: int32(v), V: int32(v)} }

// EdgeLocation places a point on edge (u,v) at distance off from u.
func (g *Graph) EdgeLocation(u, v int, off float64) (Location, error) {
	w, ok := g.EdgeWeight(u, v)
	if !ok {
		return Location{}, fmt.Errorf("road: no edge (%d,%d)", u, v)
	}
	if off < 0 || off > w {
		return Location{}, fmt.Errorf("road: offset %g outside edge (%d,%d) of length %g", off, u, v, w)
	}
	if off == 0 {
		return VertexLocation(u), nil
	}
	if off == w {
		return VertexLocation(v), nil
	}
	return Location{U: int32(u), V: int32(v), Off: off, w: w}, nil
}

// OnVertex reports whether the location is exactly a road vertex.
func (l Location) OnVertex() bool { return l.U == l.V }

// priority queue for Dijkstra.
type pqItem struct {
	v int32
	d float64
}
type pq []pqItem

func (p pq) Len() int                 { return len(p) }
func (p pq) Less(i, j int) bool       { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)            { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)              { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any                { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }
func (p *pq) push(v int32, d float64) { heap.Push(p, pqItem{v: v, d: d}) }

// DistancesFrom runs Dijkstra from the location and returns the distance to
// every road vertex, pruned at bound (vertices farther than bound report
// Inf; pass math.Inf(1) for unbounded). The returned slice has length N().
func (g *Graph) DistancesFrom(src Location, bound float64) []float64 {
	dist, _ := g.distancesFrom(src, bound, nil)
	return dist
}

// dijkstraCancelStride is how many heap pops the bounded Dijkstra settles
// between polls of its cancel channel: rare enough that the poll is free
// (one non-blocking select per stride), frequent enough that cancellation
// latency is bounded by a sliver of the full run even on continent-scale
// graphs.
const dijkstraCancelStride = 1024

// DistancesFromCancel is DistancesFrom with mid-run cancellation: once
// cancel closes, the Dijkstra abandons its frontier within
// dijkstraCancelStride heap pops and returns (nil, ErrCanceled) instead of
// running the full expansion. A nil cancel is never canceled.
func (g *Graph) DistancesFromCancel(src Location, bound float64, cancel <-chan struct{}) ([]float64, error) {
	return g.distancesFrom(src, bound, cancel)
}

func (g *Graph) distancesFrom(src Location, bound float64, cancel <-chan struct{}) ([]float64, error) {
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = Inf
	}
	var q pq
	seed := func(v int32, d float64) {
		if d <= bound && d < dist[v] {
			dist[v] = d
			q.push(v, d)
		}
	}
	if src.OnVertex() {
		seed(src.U, 0)
	} else {
		seed(src.U, src.Off)
		seed(src.V, src.w-src.Off)
	}
	pops := 0
	for q.Len() > 0 {
		if cancel != nil {
			if pops++; pops >= dijkstraCancelStride {
				pops = 0
				if chanClosed(cancel) {
					return nil, ErrCanceled
				}
			}
		}
		it := heap.Pop(&q).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range g.adj[it.v] {
			nd := it.d + e.w
			if nd <= bound && nd < dist[e.to] {
				dist[e.to] = nd
				q.push(e.to, nd)
			}
		}
	}
	return dist, nil
}

// DistanceAt evaluates a distance field (as returned by DistancesFrom with
// the same source) at an arbitrary location.
func DistanceAt(dist []float64, loc Location) float64 {
	if loc.OnVertex() {
		return dist[loc.U]
	}
	du := dist[loc.U] + loc.Off
	dv := dist[loc.V] + (loc.w - loc.Off)
	return math.Min(du, dv)
}

// Distance computes the exact network distance between two locations.
// Special case: two points on the same edge can reach each other directly
// along the edge.
func (g *Graph) Distance(a, b Location) float64 {
	dist := g.DistancesFrom(a, Inf)
	d := DistanceAt(dist, b)
	if direct, ok := sameEdgeDirect(a, b); ok && direct < d {
		d = direct
	}
	return d
}

// sameEdgeDirect returns the along-the-edge distance when a and b lie on the
// same road segment.
func sameEdgeDirect(a, b Location) (float64, bool) {
	if a.OnVertex() || b.OnVertex() {
		return 0, false
	}
	switch {
	case a.U == b.U && a.V == b.V:
		return math.Abs(a.Off - b.Off), true
	case a.U == b.V && a.V == b.U:
		return math.Abs(a.Off - (a.w - b.Off)), true
	}
	return 0, false
}
