package service

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"time"

	"roadsocial/client"
)

// WithRequestID ensures every request carries an X-Request-ID: a client-
// supplied ID is kept (so callers can correlate with their own logs), a
// missing one is minted at this edge. The ID is set on the inbound request
// headers — from where the shard tier forwards it to leaf backends and the
// job manager stamps it into job records — and echoed on the response.
func WithRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(client.HeaderRequestID)
		if id == "" {
			id = NewRequestID()
			r.Header.Set(client.HeaderRequestID, id)
		}
		w.Header().Set(client.HeaderRequestID, id)
		h.ServeHTTP(w, r)
	})
}

// NewRequestID mints a 16-hex-digit random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; a zero ID
		// beats a panic on an exotic one.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// RequestIDFrom reads the request ID off an HTTP request (empty when no
// middleware or client set one).
func RequestIDFrom(r *http.Request) string {
	return r.Header.Get(client.HeaderRequestID)
}

// AccessLog wraps h so every request emits exactly one structured record on
// logger when it terminates: method, route, dataset, status, outcome,
// duration, bytes, request ID, and whether the router failed it over.
// Liveness and scrape endpoints (/v1/healthz, /metrics) log at Debug so a
// probing load balancer cannot flood the log; everything else logs at Info.
func AccessLog(logger *slog.Logger, h http.Handler) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		outcome := OutcomeOK
		if status >= 400 {
			outcome = client.CodeForStatus(status)
		}
		level := slog.LevelInfo
		switch r.URL.Path {
		case "/v1/healthz", "/metrics":
			level = slog.LevelDebug
		}
		attrs := []any{
			"method", r.Method,
			"route", RouteLabel(r.Method, r.URL.Path),
			"path", r.URL.Path,
			"dataset", DatasetFromPath(r.URL.Path),
			"status", status,
			"outcome", outcome,
			"duration_ms", float64(time.Since(start).Microseconds()) / 1000,
			"bytes", sw.bytes,
			"request_id", RequestIDFrom(r),
		}
		if shard := sw.Header().Get(client.HeaderFailedOver); shard != "" {
			attrs = append(attrs, "failed_over", shard)
		}
		logger.Log(r.Context(), level, "request", attrs...)
	})
}

// statusWriter captures the terminal status and body size of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it streams (snapshot
// exports through a router).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// RouteLabel names the route class of a request path for logs and metrics —
// a bounded label ("search", "ktcore", "snapshot", ...), never the raw path
// (which embeds dataset names and job IDs).
func RouteLabel(method, path string) string {
	switch {
	case path == "/v1/batch":
		return "batch"
	case path == "/v1/search":
		return "search"
	case path == "/v1/ktcore":
		return "ktcore"
	case path == "/v1/stats":
		return "stats"
	case path == "/v1/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	case path == "/v1/jobs" || strings.HasPrefix(path, "/v1/jobs/"):
		return "jobs"
	case strings.HasPrefix(path, "/v1/datasets/"):
		rest := path[len("/v1/datasets/"):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch sub := rest[i+1:]; {
			case sub == "search" || sub == "ktcore" || sub == "snapshot" ||
				sub == "hotkeys" || sub == "move" || sub == "edges":
				return sub
			case sub == "queries" || strings.HasPrefix(sub, "queries/"):
				if strings.HasSuffix(sub, "/events") {
					return "events"
				}
				return "queries"
			}
			return "other"
		}
		switch method {
		case http.MethodDelete:
			return "delete"
		default:
			return "create"
		}
	default:
		return "other"
	}
}

// DatasetFromPath extracts the dataset name from a dataset-scoped path
// ("/v1/datasets/{name}[/...]"); other paths answer "".
func DatasetFromPath(path string) string {
	const prefix = "/v1/datasets/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	name := path[len(prefix):]
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	if unescaped, err := url.PathUnescape(name); err == nil {
		name = unescaped
	}
	return name
}
