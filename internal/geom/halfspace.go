package geom

import (
	"math"

	"roadsocial/internal/lp"
)

// Eps is the geometric tolerance shared with the LP solver.
const Eps = lp.Eps

// Halfspace is the closed halfspace A·w <= B of the preference domain.
// Its supporting hyperplane is A·w = B; the complementary closed halfspace
// (A·w >= B) is obtained with Negate.
type Halfspace struct {
	A []float64
	B float64
}

// Negate returns the complementary closed halfspace A·w >= B, represented
// as (-A)·w <= -B.
func (h Halfspace) Negate() Halfspace {
	a := make([]float64, len(h.A))
	for i, v := range h.A {
		a[i] = -v
	}
	return Halfspace{A: a, B: -h.B}
}

// Contains reports whether point w satisfies the halfspace within tolerance.
func (h Halfspace) Contains(w []float64) bool {
	s := 0.0
	for i, a := range h.A {
		s += a * w[i]
	}
	return s <= h.B+Eps
}

// Eval returns A·w - B (negative strictly inside, positive strictly outside).
func (h Halfspace) Eval(w []float64) float64 {
	s := -h.B
	for i, a := range h.A {
		s += a * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of the normal vector A.
func (h Halfspace) Norm() float64 {
	s := 0.0
	for _, a := range h.A {
		s += a * a
	}
	return math.Sqrt(s)
}

// IsTrivial reports whether the halfspace constrains nothing (zero normal
// and non-negative B) or is infeasible everywhere (zero normal, negative B).
// The second return value is true when the halfspace is everywhere-false.
func (h Halfspace) IsTrivial() (trivial, infeasible bool) {
	if h.Norm() > Eps {
		return false, false
	}
	return true, h.B < -Eps
}

// Key returns a canonical form of the supporting hyperplane, used to
// deduplicate hyperplanes when inserting into arrangements. Hyperplanes that
// differ only by positive scaling share a key; a and -a (same plane, opposite
// orientation) also share a key.
func (h Halfspace) Key() [8]int64 {
	const scale = 1e7
	// Normalize by the largest-magnitude coefficient to make the key scale
	// invariant, forcing its sign positive to merge opposite orientations.
	m := 0.0
	for _, a := range h.A {
		if math.Abs(a) > m {
			m = math.Abs(a)
		}
	}
	var key [8]int64
	if m <= Eps {
		key[7] = int64(math.Round(math.Min(math.Max(h.B, -1), 1) * scale))
		return key
	}
	sign := 1.0
	for _, a := range h.A {
		if math.Abs(a) > Eps {
			if a < 0 {
				sign = -1
			}
			break
		}
	}
	inv := sign / m
	for i, a := range h.A {
		if i >= 7 {
			break
		}
		key[i] = int64(math.Round(a * inv * scale))
	}
	key[7] = int64(math.Round(h.B * inv * scale))
	return key
}
