package mac

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"roadsocial/internal/domgraph"
	"roadsocial/internal/geom"
	"roadsocial/internal/social"
)

// Prepared is the reusable prepared state of a MAC query family: everything
// the search engines derive from (Q, k, t) before looking at the preference
// region. It holds the maximal (k,t)-core H_k^t (Lemmas 1-3) — whose
// computation is dominated by the road-network range query and dominates
// small-query latency — plus a small internal cache of region-dependent
// state (the r-dominance DAG and the localized community graph), so a
// stream of queries sharing (Q, k, t) pays Prepare once and queries that
// additionally share the region skip straight to the engines.
//
// A Prepared is immutable apart from its internal region cache, which is
// synchronized: any number of goroutines may call GlobalSearch, LocalSearch,
// and KTCore concurrently.
type Prepared struct {
	net *Network
	q   []int32 // query vertices, sorted canonical copy
	k   int
	t   float64
	kt  []int32 // H_k^t member ids, sorted ascending

	mu      sync.Mutex
	regions map[string]*regionEntry
	order   []string // region keys, least recently used first
}

// maxRegionSpaces bounds the per-Prepared region cache. Regions beyond the
// bound evict least-recently-used entries; in-flight builds always complete
// for their waiters even when evicted.
const maxRegionSpaces = 8

// regionSpace is the region-dependent half of the prepared state, read-only
// after construction and shared across every query that uses it.
type regionSpace struct {
	dag     *domgraph.DAG
	hg      *social.Graph
	qLocal  []int32
	degBase []int32
	arcs    int
}

// regionEntry coalesces concurrent builds of the same region: the first
// caller builds, later callers wait on ready.
type regionEntry struct {
	ready chan struct{}
	rs    *regionSpace
	err   error
}

// Prepare computes the maximal (k,t)-core for the query and returns a
// Prepared handle that can serve any number of subsequent searches sharing
// the query's (Q, K, T) — the preference region, J, Parallelism, and Cancel
// knobs may vary per search. It returns ErrNoCommunity when no (k,t)-core
// containing Q exists.
func Prepare(net *Network, q *Query) (*Prepared, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(net); err != nil {
		return nil, err
	}
	kt, err := ktCore(net, q.Q, q.K, q.T, q.Parallelism, q.Cancel)
	if err != nil {
		return nil, err
	}
	qs := append([]int32(nil), q.Q...)
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	return &Prepared{
		net: net, q: qs, k: q.K, t: q.T, kt: kt,
		regions: make(map[string]*regionEntry),
	}, nil
}

// KTCore returns the vertex set of the maximal (k,t)-core, sorted ascending.
func (p *Prepared) KTCore() Community {
	return append(Community(nil), p.kt...)
}

// K returns the prepared coreness threshold.
func (p *Prepared) K() int { return p.k }

// T returns the prepared query-distance threshold.
func (p *Prepared) T() float64 { return p.t }

// Q returns the prepared query vertices, sorted ascending. Callers must not
// mutate the result.
func (p *Prepared) Q() []int32 { return p.q }

// GlobalSearch runs the exact DFS-based search on the prepared state. The
// query must agree with the prepared (Q, K, T); region, J, Parallelism, and
// Cancel are the query's own.
func (p *Prepared) GlobalSearch(q *Query) (*Result, error) {
	ss, err := p.space(q)
	if err != nil {
		return nil, err
	}
	return globalSearchOn(ss, q)
}

// LocalSearch runs the local search framework on the prepared state, under
// the same query-compatibility contract as GlobalSearch.
func (p *Prepared) LocalSearch(q *Query, opts LocalOptions) (*Result, error) {
	ss, err := p.space(q)
	if err != nil {
		return nil, err
	}
	return localSearchOn(ss, q, opts)
}

// matches checks that q asks for the prepared query family.
func (p *Prepared) matches(q *Query) error {
	if q.K != p.k || q.T != p.t {
		return fmt.Errorf("mac: prepared for (k=%d, t=%g), query asks (k=%d, t=%g)", p.k, p.t, q.K, q.T)
	}
	if len(q.Q) != len(p.q) {
		return fmt.Errorf("mac: prepared for %d query vertices, query has %d", len(p.q), len(q.Q))
	}
	qs := append([]int32(nil), q.Q...)
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	for i, v := range qs {
		if v != p.q[i] {
			return fmt.Errorf("mac: prepared query set %v, query asks %v", p.q, qs)
		}
	}
	return nil
}

// space assembles a per-run searchSpace over the (possibly cached)
// region-dependent state for q's region. The returned space shares dag, hg,
// qLocal, and degBase read-only with every concurrent run on the same
// region; stats are fresh per run.
func (p *Prepared) space(q *Query) (*searchSpace, error) {
	if err := q.Validate(p.net); err != nil {
		return nil, err
	}
	if err := p.matches(q); err != nil {
		return nil, err
	}
	rs, err := p.regionSpace(q)
	if err != nil {
		return nil, err
	}
	ss := &searchSpace{
		net: p.net, query: q,
		dag: rs.dag, hg: rs.hg, qLocal: rs.qLocal, degBase: rs.degBase,
	}
	ss.stats.KTCoreSize = rs.hg.N()
	ss.stats.KTCoreEdges = rs.hg.M()
	ss.stats.DomGraphArcs = rs.arcs
	return ss, nil
}

// regionSpace returns the cached region state for q.Region, building it at
// most once per distinct region: concurrent callers with the same region
// coalesce on one build, and the cache keeps the maxRegionSpaces most
// recently used regions. A build runs under its builder's Cancel only; when
// the builder is canceled mid-build, a waiter whose own query is still live
// takes over as the next builder instead of inheriting the cancellation.
func (p *Prepared) regionSpace(q *Query) (*regionSpace, error) {
	key := regionKey(q.Region)
	for {
		p.mu.Lock()
		if e, ok := p.regions[key]; ok {
			p.touch(key)
			p.mu.Unlock()
			select {
			case <-e.ready:
			case <-q.Cancel:
				return nil, ErrCanceled
			}
			if errors.Is(e.err, ErrCanceled) && !queryCancelled(q) {
				// The builder's cancellation, not ours; its entry is being
				// removed — retry and become the builder.
				continue
			}
			return e.rs, e.err
		}
		e := &regionEntry{ready: make(chan struct{})}
		p.regions[key] = e
		p.order = append(p.order, key)
		if len(p.order) > maxRegionSpaces {
			evict := p.order[0]
			p.order = p.order[1:]
			delete(p.regions, evict)
		}
		p.mu.Unlock()

		rs, err := p.buildRegionSpace(q)
		e.rs, e.err = rs, err
		close(e.ready)
		if err != nil {
			// Failed (typically canceled) builds must not be served from
			// cache.
			p.mu.Lock()
			if cur, ok := p.regions[key]; ok && cur == e {
				delete(p.regions, key)
				for i, k := range p.order {
					if k == key {
						p.order = append(p.order[:i], p.order[i+1:]...)
						break
					}
				}
			}
			p.mu.Unlock()
		}
		return rs, err
	}
}

// touch moves key to the most-recently-used end of the eviction order.
// Caller holds p.mu.
func (p *Prepared) touch(key string) {
	for i, k := range p.order {
		if k == key {
			p.order = append(append(p.order[:i], p.order[i+1:]...), key)
			return
		}
	}
}

// buildRegionSpace constructs the r-dominance graph over H_k^t for the
// query's region and relabels the community graph into the DAG's local
// space (the second half of the former one-shot Prepare).
func (p *Prepared) buildRegionSpace(q *Query) (*regionSpace, error) {
	if queryCancelled(q) {
		return nil, ErrCanceled
	}
	net := p.net
	vecs := make([][]float64, len(p.kt))
	for i, v := range p.kt {
		vecs[i] = net.Social.Attrs(int(v))
	}
	dag := domgraph.Build(q.Region, p.kt, vecs, 0)
	if queryCancelled(q) {
		return nil, ErrCanceled
	}

	// Localized graph: vertex i corresponds to dag.IDs[i].
	hb := social.NewBuilder(dag.N(), net.Social.D())
	inKT := make(map[int32]int32, dag.N())
	for id, local := range dag.Local {
		inKT[id] = local
	}
	for id, local := range dag.Local {
		hb.SetAttrs(int(local), net.Social.Attrs(int(id)))
		hb.SetLabel(int(local), net.Social.Label(int(id)))
		for _, w := range net.Social.Neighbors(int(id)) {
			if wl, ok := inKT[w]; ok && id < w {
				hb.AddEdge(int(local), int(wl))
			}
		}
	}
	hg, err := hb.Build()
	if err != nil {
		return nil, err
	}
	qLocal := make([]int32, len(p.q))
	for i, v := range p.q {
		qLocal[i] = dag.Local[v]
	}
	arcs := 0
	for v := int32(0); v < int32(dag.N()); v++ {
		arcs += len(dag.Children(v))
	}
	rs := &regionSpace{dag: dag, hg: hg, qLocal: qLocal, arcs: arcs}
	rs.degBase = make([]int32, hg.N())
	for v := 0; v < hg.N(); v++ {
		rs.degBase[v] = int32(hg.Degree(v))
	}
	return rs, nil
}

// regionKey is a canonical byte signature of a region: box bounds, extra
// halfspaces, and corners (caller-supplied for polytopes), each section
// length-prefixed so distinct regions cannot collide. Regions are equal
// under the key iff their defining floats are bit-identical — the right
// notion for cache identity, where "same request repeated" is the target.
func regionKey(r *geom.Region) string {
	b := make([]byte, 0, 16*(len(r.Lo)+len(r.Hi))+64)
	f := func(v float64) {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	vec := func(vs []float64) {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(vs)))
		for _, v := range vs {
			f(v)
		}
	}
	vec(r.Lo)
	vec(r.Hi)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Extra)))
	for _, h := range r.Extra {
		vec(h.A)
		f(h.B)
	}
	corners := r.Corners()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(corners)))
	for _, c := range corners {
		vec(c)
	}
	return string(b)
}
