package service

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"roadsocial/client"
	"roadsocial/internal/mac"
	"roadsocial/internal/standing"
)

// MaxRequestBody bounds request bodies. Search requests are small; a batch
// of MaxBatchItems fits comfortably. The shard router applies the same
// bound so single- and multi-shard deployments agree on the accepted
// request size.
const MaxRequestBody = 1 << 20

// Handler returns the HTTP API. Datasets are addressable resources, and
// long-running control-plane operations are job resources:
//
//	POST   /v1/datasets/{name}          — register from an on-disk spec (201;
//	                                      ?async=1 answers 202 with a job)
//	DELETE /v1/datasets/{name}          — unregister (200)
//	POST   /v1/datasets/{name}/search   — run a MAC search
//	POST   /v1/datasets/{name}/ktcore   — maximal cohesive-subgraph membership
//	POST   /v1/datasets/{name}/edges    — apply a mutation batch (journaled)
//	DELETE /v1/datasets/{name}/edges    — delete edges (delete-only batch)
//	GET    /v1/datasets/{name}/snapshot — export the built dataset (octet-stream)
//	PUT    /v1/datasets/{name}/snapshot — register from uploaded snapshot (201)
//	POST   /v1/datasets/{name}/queries  — register a standing query (201, snapshot)
//	GET    /v1/datasets/{name}/queries  — list standing queries
//	GET    /v1/datasets/{name}/queries/{id}        — one query, live result
//	DELETE /v1/datasets/{name}/queries/{id}        — unregister (terminal event)
//	GET    /v1/datasets/{name}/queries/{id}/events — subscribe (SSE)
//	GET    /v1/jobs/{id}                — poll a job
//	GET    /v1/jobs                     — list jobs
//	DELETE /v1/jobs/{id}                — cancel a job
//	POST   /v1/batch                    — N requests, one admission
//	GET    /v1/healthz                  — liveness + registered datasets
//	GET    /v1/stats                    — counters, cache, latency histogram
//
//	POST   /v1/search, /v1/ktcore       — legacy shims: dataset read from the
//	                                      body, answers byte-identical to the
//	                                      dataset-scoped routes
//
// Saturation maps to 429, an exceeded deadline to 504, validation problems
// to 400, an unknown dataset or job to 404, a duplicate create to 409, and
// a missing or wrong bearer token (when Config.AuthToken is set) to 401;
// every error body is {"error": "...", "code": "..."} with the code drawn
// from the client package's Code* constants.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets/{name}/search", func(w http.ResponseWriter, r *http.Request) {
		s.serveSearch(w, r, r.PathValue("name"), false)
	})
	mux.HandleFunc("POST /v1/datasets/{name}/ktcore", func(w http.ResponseWriter, r *http.Request) {
		s.serveSearch(w, r, r.PathValue("name"), true)
	})
	mux.HandleFunc("POST /v1/datasets/{name}/edges", s.serveMutate)
	mux.HandleFunc("DELETE /v1/datasets/{name}/edges", s.serveDeleteEdges)
	mux.HandleFunc("GET /v1/datasets/{name}/snapshot", s.serveSaveSnapshot)
	mux.HandleFunc("PUT /v1/datasets/{name}/snapshot", s.serveRestoreSnapshot)
	mux.HandleFunc("GET /v1/datasets/{name}/hotkeys", s.serveHotKeys)
	mux.HandleFunc("POST /v1/datasets/{name}/queries", s.serveCreateStandingQuery)
	mux.HandleFunc("GET /v1/datasets/{name}/queries", s.serveListStandingQueries)
	mux.HandleFunc("GET /v1/datasets/{name}/queries/{id}", s.serveGetStandingQuery)
	mux.HandleFunc("DELETE /v1/datasets/{name}/queries/{id}", s.serveDeleteStandingQuery)
	mux.HandleFunc("GET /v1/datasets/{name}/queries/{id}/events", s.serveStandingEvents)
	mux.HandleFunc("POST /v1/datasets/{name}", s.serveCreateDataset)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.serveDeleteDataset)
	mux.HandleFunc("GET /v1/jobs/{id}", s.serveGetJob)
	mux.HandleFunc("GET /v1/jobs", s.serveListJobs)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.serveCancelJob)
	mux.HandleFunc("POST /v1/batch", s.serveBatch)
	mux.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		s.serveSearch(w, r, "", false)
	})
	mux.HandleFunc("POST /v1/ktcore", func(w http.ResponseWriter, r *http.Request) {
		s.serveSearch(w, r, "", true)
	})
	mux.HandleFunc("GET /v1/healthz", s.serveHealthz)
	mux.HandleFunc("GET /v1/stats", s.serveStats)
	mux.HandleFunc("GET /metrics", s.serveMetrics)
	h := RequireAuth(s.cfg.AuthToken, mux)
	if s.cfg.Logger != nil {
		h = AccessLog(s.cfg.Logger, h)
	}
	return WithRequestID(h)
}

// RequireAuth wraps a handler with shared-secret bearer auth: every request
// must carry "Authorization: Bearer <token>". An empty token returns h
// unchanged. cmd/macserver applies it at the listener for both leaf and
// routing tiers, so a fleet shares one secret end to end.
func RequireAuth(token string, h http.Handler) http.Handler {
	if token == "" {
		return h
	}
	want := []byte("Bearer " + token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="macserver"`)
			writeError(w, http.StatusUnauthorized, errors.New("missing or invalid bearer token"))
			return
		}
		h.ServeHTTP(w, r)
	})
}

// serveSearch handles the dataset-scoped search/ktcore routes (dataset from
// the URL path) and the legacy body-addressed shims (dataset == ""). Both
// run the same decode → deadline → Do pipeline, so the legacy response
// stays byte-identical.
func (s *Server) serveSearch(w http.ResponseWriter, r *http.Request, dataset string, ktCoreOnly bool) {
	var req SearchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if dataset != "" {
		// The URL names the resource; a body dataset may restate but never
		// contradict it.
		if req.Dataset != "" && req.Dataset != dataset {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("body dataset %q contradicts path dataset %q", req.Dataset, dataset))
			return
		}
		req.Dataset = dataset
	}
	req.KTCoreOnly = ktCoreOnly

	cancel, stop := s.requestCancel(r, req.TimeoutMs)
	defer stop()
	start := time.Now()
	resp, tm, err := s.DoTimed(&req, cancel)
	if err != nil {
		s.logSlow(r, &req, msSince(start), err)
		writeServiceError(w, err)
		return
	}
	// Encode before writing the header: Server-Timing must carry the encode
	// phase, and headers cannot follow the body. The trailing newline keeps
	// the body byte-identical to the json.Encoder path.
	encodeStart := time.Now()
	body, merr := json.Marshal(resp)
	if merr != nil {
		writeError(w, http.StatusInternalServerError, merr)
		return
	}
	tm.EncodeMs = msSince(encodeStart)
	s.metrics.recordStage(StageEncode, tm.EncodeMs)
	s.logSlow(r, &req, msSince(start), nil)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(client.HeaderServerTiming, tm.serverTiming())
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte("\n"))
}

// logSlow emits the slow-query record: the full request key an operator
// needs to reproduce the offender.
func (s *Server) logSlow(r *http.Request, req *SearchRequest, ms float64, err error) {
	if s.cfg.SlowQuery <= 0 || time.Duration(ms*float64(time.Millisecond)) < s.cfg.SlowQuery {
		return
	}
	attrs := []any{
		"dataset", req.Dataset,
		"algo", string(reqAlgo(req)),
		"q", req.Q,
		"k", req.K,
		"t", req.T,
		"j", req.J,
		"duration_ms", ms,
		"request_id", RequestIDFrom(r),
	}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
	}
	s.logger().Warn("slow query", attrs...)
}

func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	cancel, stop := s.requestCancel(r, req.TimeoutMs)
	defer stop()
	resp, err := s.DoBatch(&req, cancel)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) serveCreateDataset(w http.ResponseWriter, r *http.Request) {
	var spec DatasetSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad dataset spec: %w", err))
		return
	}
	name := r.PathValue("name")
	if AsyncRequested(r) {
		job, err := s.CreateDatasetAsyncTagged(name, &spec, RequestIDFrom(r))
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
		return
	}
	info, err := s.CreateDataset(name, &spec)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// AsyncRequested reports whether a create should answer 202 with a job
// resource instead of blocking until the dataset is built (the ?async=1
// query parameter; shared with the shard tier so both parse it alike).
func AsyncRequested(r *http.Request) bool {
	switch r.URL.Query().Get("async") {
	case "", "0", "false":
		return false
	default:
		return true
	}
}

// MaxSnapshotBody is the default bound on snapshot uploads (1 GiB): far
// beyond any JSON request, because a snapshot carries the dataset itself.
// Deployments expecting bigger datasets raise it via Config.MaxSnapshotBytes
// (-max-snapshot-bytes); the file/mmap register path has no body to bound.
const MaxSnapshotBody = 1 << 30

func (s *Server) serveSaveSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Existence is checked up front so a 404 can still be a clean JSON
	// answer; the stream itself cannot change status once bytes flow.
	if _, err := s.network(name); err != nil {
		writeServiceError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = s.SaveSnapshot(name, w)
}

func (s *Server) serveRestoreSnapshot(w http.ResponseWriter, r *http.Request) {
	info, err := s.CreateDatasetFromSnapshot(r.PathValue("name"),
		http.MaxBytesReader(w, r.Body, s.cfg.MaxSnapshotBytes))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// MaxHotKeys bounds how many prepared-cache residents the hotkeys endpoint
// reports: enough to carry a follower's first seconds of traffic, small
// enough that warming never competes with serving.
const MaxHotKeys = 32

func (s *Server) serveHotKeys(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	keys, err := s.HotKeys(name, MaxHotKeys)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	if keys == nil {
		keys = []client.HotKey{}
	}
	writeJSON(w, http.StatusOK, client.HotKeysResponse{Dataset: name, Keys: keys})
}

func (s *Server) serveGetJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) serveListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, JobList{Jobs: s.jobs.List()})
}

func (s *Server) serveCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) serveDeleteDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.RemoveDataset(name); err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// requestCancel builds the cancel channel for one request: one channel
// carries both the deadline and the client disconnect — whichever fires
// first abandons the work at its next task boundary (mac.Query.Cancel
// semantics). stop releases the timer and the context hook.
func (s *Server) requestCancel(r *http.Request, timeoutMs int) (cancel chan struct{}, stop func()) {
	timeout := time.Duration(timeoutMs) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	cancel = make(chan struct{})
	var once sync.Once
	abort := func() { once.Do(func() { close(cancel) }) }
	timer := time.AfterFunc(timeout, abort)
	unhook := context.AfterFunc(r.Context(), abort)
	return cancel, func() {
		timer.Stop()
		unhook()
	}
}

func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"datasets":       s.Datasets(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) serveStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// serveMetrics renders the Prometheus exposition of this server. Note the
// route lives behind RequireAuth like every other: a scraper configures the
// same bearer token as any client.
func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	_ = WriteProm(w, []PromSet{{Stats: s.Stats()}})
}

// statusOf maps service errors onto HTTP status codes. Errors outside the
// known sentinels are server-side faults (500), not the client's.
func statusOf(err error) int {
	var standingUnknown *standing.ErrUnknown
	var standingExists *standing.ErrExists
	switch {
	case errors.As(err, &standingUnknown):
		return http.StatusNotFound
	case errors.As(err, &standingExists):
		return http.StatusConflict
	}
	switch {
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrJobsSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, mac.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrUnknownDataset), errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrDatasetExists):
		return http.StatusConflict
	case errors.Is(err, ErrInvalid):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeServiceError maps a Do/DoBatch/lifecycle error onto its HTTP answer.
func writeServiceError(w http.ResponseWriter, err error) {
	status := statusOf(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, status, err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the canonical error body: the human-readable message
// plus the machine-readable code derived from the status (one mapping for
// every tier, client.CodeForStatus), so SDK callers branch on
// client.CodeOf instead of string-matching messages.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{
		"error": err.Error(),
		"code":  client.CodeForStatus(status),
	})
}
