// Command benchgate compares two perf-trajectory JSON files produced by
// `experiments -json` (e.g. the committed baseline BENCH_PR2.json vs a
// freshly generated point) and fails when a matching record regressed
// beyond the tolerance factor — benchstat-style old/new/delta gating over
// the harness records, used by CI.
//
// Records match on (experiment, scale, parallelism, queries_per, seed).
// Multiple -old/-new files (comma separated) are reduced per record by
// minimum, which suppresses scheduler noise the way benchstat's repeated
// counts do. Records whose baseline wall-clock is below -min-seconds are
// reported but never gate (they are noise-dominated).
//
//	benchgate -old BENCH_PR2.json -new /tmp/bench.json -factor 2.0
//	benchgate -old a.json,b.json -new c.json,d.json -require-warm-speedup
//
// -require-warm-speedup additionally asserts the service acceptance
// invariants on the new point: a warm prepared-cache hit must be faster
// than a cold preparation (metrics cold_p50_ms > warm_p50_ms) — for the
// core engine and for the truss engine, whose requests flow through the
// same cache since the Engine/Prepared unification — and the saturation
// burst must have produced clean 429 rejections.
//
// -require-batch-amortization asserts the /v1/batch invariant: the
// per-item cost of a batched warm membership request must be below the
// same request sent standalone (metric batch_amortization > 1) — one
// admission and one round trip amortized over the items.
//
// -require-snapshot-speedup asserts the control-plane invariant of the
// snapshot format: registering a dataset from its snapshot must be faster
// than building it from the spec (metrics register_snapshot_ms <
// register_build_ms) — register time proportional to I/O, not G-tree
// construction.
//
// -require-mmap-speedup asserts the zero-copy invariant of RSNAPv2: the
// memory-mapped file register must undercut the buffered snapshot restore,
// which must undercut building from the spec (register_mmap_ms <
// register_snapshot_ms < register_build_ms), and the record must carry the
// capacity axis (heap_bytes_per_dataset > 0) — registering is page faults,
// and a resident dataset costs heap only for what cannot live on the
// mapping. Tiny-scale records are skipped: a tiny image's restore is
// dominated by the HTTP round trip, so buffered-vs-mmap there is noise;
// the invariant gates on the capacity point (scale=small and up), where
// the gap is physical.
//
// -require-incremental-speedup asserts the write-path invariant of live
// mutable datasets: incrementally maintaining core/truss numbers through a
// mutation batch must undercut re-running the full decompositions
// (mutate_incremental_ms < mutate_full_ms), and the mixed read-write phase
// must have recorded successful mutations (mixed_mutations > 0 with a
// mixed_p99_ms). Tiny-scale records are skipped: a tiny graph's full
// decomposition is microseconds, so incremental-vs-full there is noise; the
// invariant gates where re-decomposition actually costs something.
//
// -require-standing asserts the push-path invariants of standing queries:
// the mutation-to-event notify p99 must be recorded and bounded — the push
// is one re-evaluation (a cold-prepare-sized job) plus SSE fanout, so p99
// must stay within 100x the record's own cold p99 plus a 250ms absolute
// allowance for scheduler jitter — and the burst sub-phase must show
// coalescing: every burst batch is relevant (standing_burst_notified counts
// them all), but the runner folds the backlog into fewer evaluations, so
// standing_coalesce_ratio (notified/evals deltas scraped from /metrics)
// must exceed 1. Tiny-scale records are skipped: a tiny re-evaluation can
// complete between back-to-back mutations, so there is no backlog to fold
// and the ratio there is noise; the invariant gates where an evaluation
// outlasts a write.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type record struct {
	Experiment  string             `json:"experiment"`
	WallSeconds float64            `json:"wall_seconds"`
	AllocMB     float64            `json:"alloc_mb"`
	Parallelism int                `json:"parallelism"`
	Scale       string             `json:"scale"`
	QueriesPer  int                `json:"queries_per"`
	Seed        int64              `json:"seed"`
	Metrics     map[string]float64 `json:"metrics"`
}

type benchFile struct {
	Records []record `json:"records"`
}

func (r record) key() string {
	return fmt.Sprintf("%s/scale=%s/p=%d/q=%d/seed=%d", r.Experiment, r.Scale, r.Parallelism, r.QueriesPer, r.Seed)
}

// load reads comma-separated files and folds records by key: minimum
// wall-clock and alloc, latest metrics (metrics are medians of many
// requests already, so min-folding them would mix runs).
func load(paths string) (map[string]record, error) {
	out := make(map[string]record)
	for _, path := range strings.Split(paths, ",") {
		data, err := os.ReadFile(strings.TrimSpace(path))
		if err != nil {
			return nil, err
		}
		var bf benchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for _, r := range bf.Records {
			k := r.key()
			if prev, ok := out[k]; ok {
				if prev.WallSeconds < r.WallSeconds {
					r.WallSeconds = prev.WallSeconds
				}
				if prev.AllocMB < r.AllocMB {
					r.AllocMB = prev.AllocMB
				}
			}
			out[k] = r
		}
	}
	return out, nil
}

func main() {
	var (
		oldPaths   = flag.String("old", "", "baseline bench JSON file(s), comma separated")
		newPaths   = flag.String("new", "", "candidate bench JSON file(s), comma separated")
		factor     = flag.Float64("factor", 2.0, "fail when new wall-clock exceeds old * factor")
		minSeconds = flag.Float64("min-seconds", 0.05, "baselines below this never gate (noise)")
		warmCheck  = flag.Bool("require-warm-speedup", false, "assert the new service_latency point shows warm < cold and saturation 429s")
		batchCheck = flag.Bool("require-batch-amortization", false, "assert the new service_latency point shows batched per-item cost below standalone (batch_amortization > 1)")
		snapCheck  = flag.Bool("require-snapshot-speedup", false, "assert the new service_latency point shows snapshot register-time below build register-time")
		mmapCheck  = flag.Bool("require-mmap-speedup", false, "assert the new service_latency point shows mmap register < buffered snapshot register < build register, with heap_bytes_per_dataset reported")
		incrCheck  = flag.Bool("require-incremental-speedup", false, "assert the new service_latency point shows incremental core/truss maintenance below full recomputation, with mixed read-write metrics recorded")
		standCheck = flag.Bool("require-standing", false, "assert the new service_latency point shows bounded standing-query notify p99 and an eval coalescing ratio above 1 under bursts")
	)
	flag.Parse()
	if *oldPaths == "" || *newPaths == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	olds, err := load(*oldPaths)
	if err != nil {
		fatal(err)
	}
	news, err := load(*newPaths)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%-44s %12s %12s %8s\n", "record", "old(s)", "new(s)", "delta")
	failed := false
	matched := 0
	for key, o := range olds {
		n, ok := news[key]
		if !ok {
			fmt.Printf("%-44s %12.3f %12s %8s\n", key, o.WallSeconds, "-", "gone")
			continue
		}
		matched++
		delta := "~"
		if o.WallSeconds > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(n.WallSeconds-o.WallSeconds)/o.WallSeconds)
		}
		verdict := ""
		if o.WallSeconds >= *minSeconds && n.WallSeconds > o.WallSeconds**factor {
			verdict = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-44s %12.3f %12.3f %8s%s\n", key, o.WallSeconds, n.WallSeconds, delta, verdict)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no matching records between old and new (different knobs?)")
		os.Exit(2)
	}

	if *warmCheck {
		ok := false
		for _, n := range news {
			if n.Experiment != "service_latency" || n.Metrics == nil {
				continue
			}
			ok = true
			cold, warm := n.Metrics["cold_p50_ms"], n.Metrics["warm_p50_ms"]
			if !(warm > 0 && cold > warm) {
				fmt.Fprintf(os.Stderr, "benchgate: warm p50 %.3fms not below cold p50 %.3fms\n", warm, cold)
				failed = true
			} else {
				fmt.Printf("service warm/cold p50: %.3fms / %.3fms (%.1fx speedup)\n", warm, cold, cold/warm)
			}
			tCold, tWarm := n.Metrics["truss_cold_p50_ms"], n.Metrics["truss_warm_p50_ms"]
			if !(tWarm > 0 && tCold > tWarm) {
				fmt.Fprintf(os.Stderr, "benchgate: truss warm p50 %.3fms not below truss cold p50 %.3fms\n", tWarm, tCold)
				failed = true
			} else {
				fmt.Printf("truss warm/cold p50: %.3fms / %.3fms (%.1fx speedup)\n", tWarm, tCold, tCold/tWarm)
			}
			if n.Metrics["saturated_429"] <= 0 {
				fmt.Fprintln(os.Stderr, "benchgate: saturation burst produced no 429 rejections")
				failed = true
			}
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "benchgate: -require-warm-speedup set but no service_latency record with metrics in -new")
			failed = true
		}
	}

	if *batchCheck {
		ok := false
		for _, n := range news {
			if n.Experiment != "service_latency" || n.Metrics == nil {
				continue
			}
			ok = true
			amort := n.Metrics["batch_amortization"]
			single, item := n.Metrics["batch_single_p50_ms"], n.Metrics["batch_item_p50_ms"]
			if !(amort > 1) {
				fmt.Fprintf(os.Stderr, "benchgate: batch per-item p50 %.3fms not below standalone p50 %.3fms (amortization %.2fx)\n", item, single, amort)
				failed = true
			} else {
				fmt.Printf("batch amortization: %.3fms standalone vs %.3fms batched per item (%.1fx)\n", single, item, amort)
			}
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "benchgate: -require-batch-amortization set but no service_latency record with metrics in -new")
			failed = true
		}
	}
	if *snapCheck {
		ok := false
		for _, n := range news {
			if n.Experiment != "service_latency" || n.Metrics == nil {
				continue
			}
			ok = true
			build, snap := n.Metrics["register_build_ms"], n.Metrics["register_snapshot_ms"]
			if !(snap > 0 && build > snap) {
				fmt.Fprintf(os.Stderr, "benchgate: snapshot register %.3fms not below build register %.3fms\n", snap, build)
				failed = true
			} else {
				fmt.Printf("register from snapshot: %.3fms vs %.3fms build (%.1fx speedup)\n", snap, build, build/snap)
			}
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "benchgate: -require-snapshot-speedup set but no service_latency record with metrics in -new")
			failed = true
		}
	}
	if *mmapCheck {
		ok := false
		for _, n := range news {
			// Tiny images restore in one HTTP round trip either way; the
			// mmap ordering only gates where the image is big enough for
			// the copy-vs-fault gap to dominate (see package doc).
			if n.Experiment != "service_latency" || n.Metrics == nil || n.Scale == "tiny" {
				continue
			}
			ok = true
			build, snap, mm := n.Metrics["register_build_ms"], n.Metrics["register_snapshot_ms"], n.Metrics["register_mmap_ms"]
			if !(mm > 0 && snap > mm && build > snap) {
				fmt.Fprintf(os.Stderr, "benchgate: register ordering violated: mmap %.3fms, snapshot %.3fms, build %.3fms (want mmap < snapshot < build)\n", mm, snap, build)
				failed = true
			} else {
				fmt.Printf("register mmap/snapshot/build: %.3fms / %.3fms / %.3fms (%.1fx over buffered)\n", mm, snap, build, snap/mm)
			}
			if heap := n.Metrics["heap_bytes_per_dataset"]; heap <= 0 {
				fmt.Fprintln(os.Stderr, "benchgate: heap_bytes_per_dataset missing or non-positive")
				failed = true
			} else {
				fmt.Printf("heap per resident dataset: %.0f bytes\n", heap)
			}
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "benchgate: -require-mmap-speedup set but no non-tiny service_latency record with metrics in -new")
			failed = true
		}
	}
	if *incrCheck {
		ok := false
		for _, n := range news {
			// Tiny graphs re-decompose in microseconds; the incremental
			// ordering only gates where a full recompute has real cost
			// (see package doc).
			if n.Experiment != "service_latency" || n.Metrics == nil || n.Scale == "tiny" {
				continue
			}
			ok = true
			incr, full := n.Metrics["mutate_incremental_ms"], n.Metrics["mutate_full_ms"]
			if !(incr > 0 && full > incr) {
				fmt.Fprintf(os.Stderr, "benchgate: incremental maintenance %.3fms not below full recompute %.3fms\n", incr, full)
				failed = true
			} else {
				fmt.Printf("mutation maintenance incremental/full: %.3fms / %.3fms (%.1fx speedup)\n", incr, full, full/incr)
			}
			if n.Metrics["mixed_mutations"] <= 0 || n.Metrics["mixed_p99_ms"] <= 0 {
				fmt.Fprintf(os.Stderr, "benchgate: mixed read-write phase missing (mixed_mutations %.0f, mixed_p99_ms %.3f)\n",
					n.Metrics["mixed_mutations"], n.Metrics["mixed_p99_ms"])
				failed = true
			}
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "benchgate: -require-incremental-speedup set but no non-tiny service_latency record with metrics in -new")
			failed = true
		}
	}
	if *standCheck {
		ok := false
		for _, n := range news {
			// A tiny re-evaluation finishes between back-to-back writes, so
			// bursts leave no backlog to coalesce; the invariant gates where
			// an evaluation outlasts a write (see package doc).
			if n.Experiment != "service_latency" || n.Metrics == nil || n.Scale == "tiny" {
				continue
			}
			ok = true
			p99, cold := n.Metrics["standing_notify_p99_ms"], n.Metrics["cold_p99_ms"]
			bound := 100*cold + 250
			if !(p99 > 0 && p99 < bound) {
				fmt.Fprintf(os.Stderr, "benchgate: standing notify p99 %.3fms not recorded or not bounded (want 0 < p99 < %.3fms = 100x cold p99 + 250ms)\n", p99, bound)
				failed = true
			} else {
				fmt.Printf("standing notify p50/p99: %.3fms / %.3fms across %.0f subscribers\n",
					n.Metrics["standing_notify_p50_ms"], p99, n.Metrics["standing_subscribers"])
			}
			ratio := n.Metrics["standing_coalesce_ratio"]
			evals, notified := n.Metrics["standing_burst_evals"], n.Metrics["standing_burst_notified"]
			if !(evals > 0 && ratio > 1) {
				fmt.Fprintf(os.Stderr, "benchgate: standing burst did not coalesce: %.0f notifications, %.0f evals (ratio %.2f, want > 1)\n", notified, evals, ratio)
				failed = true
			} else {
				fmt.Printf("standing burst coalescing: %.0f notifications folded into %.0f evals (%.1fx)\n", notified, evals, ratio)
			}
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "benchgate: -require-standing set but no non-tiny service_latency record with metrics in -new")
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
