package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"roadsocial/client"
	"roadsocial/internal/mac"
	"roadsocial/internal/road"
	"roadsocial/internal/service"
)

// waitQueryEvent reads one standing-query event with a deadline.
func waitQueryEvent(t testing.TB, sub *client.Subscription) client.QueryEvent {
	t.Helper()
	select {
	case ev, ok := <-sub.Events():
		if !ok {
			t.Fatalf("subscription closed while waiting for an event (err: %v)", sub.Err())
		}
		return ev
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for a standing-query event")
		return client.QueryEvent{}
	}
}

func containsID(a []int32, v int32) bool {
	for _, x := range a {
		if x == v {
			return true
		}
	}
	return false
}

// memberCut picks one community member (outside avoid) and builds the delete
// batch severing all its edges to the other listed members — a mutation that
// provably removes it from the standing result.
func memberCut(t testing.TB, net *mac.Network, members []int32, avoid map[int32]bool) (int32, *client.MutateRequest) {
	t.Helper()
	in := map[int32]bool{}
	for _, m := range members {
		in[m] = true
	}
	for _, victim := range members {
		if avoid[victim] {
			continue
		}
		var dels [][2]int32
		for _, w := range net.Social.Neighbors(int(victim)) {
			if in[w] {
				dels = append(dels, [2]int32{victim, w})
			}
		}
		if len(dels) > 0 {
			return victim, &client.MutateRequest{Deletes: dels}
		}
	}
	t.Fatal("no community member with intra-community edges to cut")
	return 0, nil
}

// TestStandingQueryMirroredAcrossReplicas: with replication 2, a registration
// through the router lands on the primary and is mirrored to the follower
// under the primary's minted id; mutations through the router drive both
// copies to the same result; a query delete and a dataset delete tear the
// registration down on every replica, ending live streams with a terminal
// event.
func TestStandingQueryMirroredAcrossReplicas(t *testing.T) {
	net_, q, k, tt := testNetwork(t)
	cfg := service.Config{MaxInFlight: 2, MaxQueue: 64, DefaultTimeout: 120 * time.Second}
	locals := []*Local{
		NewLocal("shard-0", service.New(cfg)),
		NewLocal("shard-1", service.New(cfg)),
	}
	rt, err := NewRouter([]Backend{locals[0], locals[1]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetReplication(2)
	const ds = "events"
	for _, l := range locals {
		if err := l.Server().AddDataset(ds, net_); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	ctx := context.Background()
	sdk := client.New(ts.URL)

	sq, err := sdk.CreateStandingQuery(ctx, ds, &client.StandingQueryRequest{Q: q, K: k, T: tt})
	if err != nil {
		t.Fatalf("create through router: %v", err)
	}
	// A client-pinned id is rejected at the leaf: the router strips the
	// internal marker from inbound creates, so only its own mirror forwards
	// may pin ids.
	if _, err := sdk.CreateStandingQuery(ctx, ds, &client.StandingQueryRequest{ID: "sq-squat", Q: q, K: k, T: tt}); client.StatusOf(err) != http.StatusBadRequest {
		t.Fatalf("client-pinned id through router: err %v, want 400", err)
	}
	// The mirror is synchronous with the create: both replicas hold the
	// registration under the primary's minted id before the 201 returns.
	for i, l := range locals {
		list, err := l.Server().StandingQueries(ds)
		if err != nil || len(list.Queries) != 1 || list.Queries[0].ID != sq.ID {
			t.Fatalf("shard-%d registrations = %+v (err %v), want exactly %s", i, list, err, sq.ID)
		}
	}
	if list, err := sdk.StandingQueries(ctx, ds); err != nil || len(list.Queries) != 1 {
		t.Fatalf("router list = %+v (err %v), want 1 query", list, err)
	}

	sub, err := sdk.Subscribe(ctx, ds, sq.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	avoid := map[int32]bool{}
	for _, qv := range q {
		avoid[qv] = true
	}
	victim, batch := memberCut(t, net_, sq.Members, avoid)
	mres, err := sdk.Mutate(ctx, ds, batch)
	if err != nil {
		t.Fatalf("mutation through router: %v", err)
	}
	ev := waitQueryEvent(t, sub)
	if ev.Version != mres.Version || !containsID(ev.Left, victim) {
		t.Fatalf("delta %+v, want version %d with %d in left", ev, mres.Version, victim)
	}
	// The mutation was forwarded to the follower too: both replicas converge
	// to the same standing result (the follower evaluates asynchronously).
	for i, l := range locals {
		l := l
		waitFor(t, 30*time.Second, fmt.Sprintf("shard-%d standing convergence", i), func() bool {
			list, err := l.Server().StandingQueries(ds)
			return err == nil && len(list.Queries) == 1 &&
				list.Queries[0].Version == mres.Version &&
				!containsID(list.Queries[0].Members, victim)
		})
	}

	// Deleting the query through the router unregisters it everywhere and
	// terminates the stream.
	if err := sdk.DeleteStandingQuery(ctx, ds, sq.ID); err != nil {
		t.Fatal(err)
	}
	ev = waitQueryEvent(t, sub)
	if !ev.Terminal {
		t.Fatalf("event after query delete = %+v, want terminal", ev)
	}
	for i, l := range locals {
		if list, _ := l.Server().StandingQueries(ds); len(list.Queries) != 0 {
			t.Fatalf("shard-%d still holds %d registrations after delete", i, len(list.Queries))
		}
	}

	// Dataset delete through the router: registrations die with the dataset
	// on every replica, live subscribers get a terminal event.
	sq2, err := sdk.CreateStandingQuery(ctx, ds, &client.StandingQueryRequest{Q: q, K: k, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := sdk.Subscribe(ctx, ds, sq2.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	if err := sdk.DeleteDataset(ctx, ds); err != nil {
		t.Fatal(err)
	}
	ev = waitQueryEvent(t, sub2)
	if !ev.Terminal || ev.Reason != "dataset deleted" {
		t.Fatalf("event after dataset delete = %+v, want terminal with reason \"dataset deleted\"", ev)
	}
	for i, l := range locals {
		if _, err := l.Server().StandingQueries(ds); err == nil {
			t.Fatalf("shard-%d still answers standing lists for the deleted dataset", i)
		}
	}
}

// TestStandingEventsRouteSkipsMissingReplica: the registration mirror is
// best-effort, so the preferred read candidate can lack a query that another
// replica holds. The events route must probe past such a replica instead of
// committing the stream to its 404 — the SDK treats a subscribe 404 as "query
// deleted" and kills the subscription permanently.
func TestStandingEventsRouteSkipsMissingReplica(t *testing.T) {
	net_, q, k, tt := testNetwork(t)
	cfg := service.Config{MaxInFlight: 2, MaxQueue: 64, DefaultTimeout: 120 * time.Second}
	locals := []*Local{
		NewLocal("shard-0", service.New(cfg)),
		NewLocal("shard-1", service.New(cfg)),
	}
	rt, err := NewRouter([]Backend{locals[0], locals[1]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetReplication(2)
	const ds = "holey"
	for _, l := range locals {
		if err := l.Server().AddDataset(ds, net_); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	ctx := context.Background()
	sdk := client.New(ts.URL)

	// The query exists only on the non-preferred replica — the inverse of a
	// dropped mirror, hitting the same routing hole: the preferred candidate
	// answers 404 for a query that is alive elsewhere.
	other := 1 - rt.OwnerIndex(ds)
	if _, err := locals[other].Server().CreateStandingQuery(ds,
		&client.StandingQueryRequest{ID: "sq-ghost", Q: q, K: k, T: tt}, ""); err != nil {
		t.Fatal(err)
	}

	sub, err := sdk.Subscribe(ctx, ds, "sq-ghost", 0)
	if err != nil {
		t.Fatalf("subscribe must route past the replica missing the query: %v", err)
	}
	defer sub.Close()

	// A routed mutation reaches every replica; the one holding the query
	// evaluates and the stream delivers the delta.
	list, err := locals[other].Server().StandingQueries(ds)
	if err != nil || len(list.Queries) != 1 {
		t.Fatalf("holder registrations = %+v (err %v)", list, err)
	}
	avoid := map[int32]bool{}
	for _, qv := range q {
		avoid[qv] = true
	}
	victim, batch := memberCut(t, net_, list.Queries[0].Members, avoid)
	if _, err := sdk.Mutate(ctx, ds, batch); err != nil {
		t.Fatal(err)
	}
	ev := waitQueryEvent(t, sub)
	if !containsID(ev.Left, victim) {
		t.Fatalf("delta %+v, want %d in left", ev, victim)
	}
}

// TestStandingFailoverSubscriber is the fault-injection bar for the standing
// subsystem: a live subscriber rides out a primary kill. The follower holds
// the mirrored registration and saw the same pre-kill mutations, so its
// event ring covers everything up to the subscriber's last-acked id — after
// the SDK reconnects through the router onto the promoted replica, the next
// mutation-driven delta arrives with zero loss before that ack and no lagged
// marker.
func TestStandingFailoverSubscriber(t *testing.T) {
	net_, q, k, tt := testNetwork(t)
	if net_.Oracle == nil {
		net_.Oracle = road.BuildGTree(net_.Road, 0)
	}
	cfg := service.Config{
		MaxInFlight:    4,
		MaxQueue:       64,
		DefaultTimeout: 120 * time.Second,
		LoadSpec: func(string, *service.DatasetSpec) (*mac.Network, uint64, error) {
			return net_, 0, nil
		},
	}
	leaves := []*leafProc{startLeaf(t, cfg), startLeaf(t, cfg)}
	backends := []Backend{
		NewRemote("shard-0", "http://"+leaves[0].addr, nil),
		NewRemote("shard-1", "http://"+leaves[1].addr, nil),
	}
	rt, err := NewRouter(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetReplication(2)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	ctx := context.Background()
	sdk := client.New(ts.URL, client.WithRetries(0))

	if _, err := sdk.CreateDataset(ctx, "durable", &client.DatasetSpec{}); err != nil {
		t.Fatal(err)
	}
	primary := rt.OwnerIndex("durable")
	follower := 1 - primary
	waitFor(t, 30*time.Second, "follower sync", func() bool {
		return holdsDataset(backends[follower], "durable")
	})

	sq, err := sdk.CreateStandingQuery(ctx, "durable", &client.StandingQueryRequest{Q: q, K: k, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	// The mirrored registration is on the follower, under the same id.
	fresp, err := http.Get("http://" + leaves[follower].addr + "/v1/datasets/durable/queries")
	if err != nil {
		t.Fatal(err)
	}
	var flist client.StandingQueryList
	if err := json.NewDecoder(fresp.Body).Decode(&flist); err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if len(flist.Queries) != 1 || flist.Queries[0].ID != sq.ID {
		t.Fatalf("follower registrations = %+v, want %s mirrored", flist.Queries, sq.ID)
	}

	sub, err := sdk.Subscribe(ctx, "durable", sq.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Pre-kill mutation: the subscriber acks exactly one event. Both replicas
	// applied the batch (routeMutate forwards it), so both rings hold an
	// equivalent event 1 — the resume point survives the primary.
	avoid := map[int32]bool{}
	for _, qv := range q {
		avoid[qv] = true
	}
	victim1, batch1 := memberCut(t, net_, sq.Members, avoid)
	mres1, err := sdk.Mutate(ctx, "durable", batch1)
	if err != nil {
		t.Fatal(err)
	}
	ev := waitQueryEvent(t, sub)
	if !containsID(ev.Left, victim1) || ev.Lagged {
		t.Fatalf("pre-kill delta %+v, want %d in left", ev, victim1)
	}
	if sub.LastEventID() != 1 {
		t.Fatalf("acked id = %d, want 1", sub.LastEventID())
	}
	remaining, err := sdk.StandingQuery(ctx, "durable", sq.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the lossless path deterministically: the follower's eval of batch1
	// is asynchronous, and a reconnect landing before it published its own
	// event 1 would (correctly) surface a lagged marker — the subscriber's
	// cursor would be ahead of the follower's counter. Wait for the
	// follower's copy to converge before killing the primary.
	waitFor(t, 30*time.Second, "follower standing eval", func() bool {
		resp, err := http.Get("http://" + leaves[follower].addr + "/v1/datasets/durable/queries/" + sq.ID)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var got client.StandingQuery
		return json.NewDecoder(resp.Body).Decode(&got) == nil && got.Version == mres1.Version
	})

	// Kill the primary; the prober promotes the follower. The subscriber's
	// stream breaks and the SDK reconnects through the router on its own.
	leaves[primary].kill()
	stopProber := rt.StartProber(20 * time.Millisecond)
	defer stopProber()

	// The write path needs the promotion; retry until the router accepts.
	victim2, batch2 := memberCut(t, net_, remaining.Members, avoid)
	var postVersion uint64
	waitFor(t, 30*time.Second, "post-failover mutation", func() bool {
		res, err := sdk.Mutate(ctx, "durable", batch2)
		if err != nil {
			return false
		}
		postVersion = res.Version
		return true
	})

	// The mutation-driven event reaches the surviving subscriber: no lagged
	// marker (nothing before the acked id was lost) and the delta carries the
	// post-failover victim.
	deadline := time.After(30 * time.Second)
	for {
		var ev client.QueryEvent
		var ok bool
		select {
		case ev, ok = <-sub.Events():
			if !ok {
				t.Fatalf("subscription died across the failover (err: %v)", sub.Err())
			}
		case <-deadline:
			t.Fatal("timed out waiting for the post-failover delta")
		}
		if ev.Lagged {
			t.Fatalf("subscriber lagged across the failover: %+v", ev)
		}
		if containsID(ev.Left, victim2) {
			if ev.Version != postVersion {
				t.Fatalf("post-failover delta at version %d, want %d", ev.Version, postVersion)
			}
			return
		}
	}
}
