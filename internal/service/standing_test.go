package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"roadsocial/client"
)

// waitEvent reads one event off a subscription with a deadline, failing the
// test on a closed channel or a timeout.
func waitEvent(t *testing.T, sub *client.Subscription) client.QueryEvent {
	t.Helper()
	select {
	case ev, ok := <-sub.Events():
		if !ok {
			t.Fatalf("subscription closed while waiting for an event (err: %v)", sub.Err())
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a standing-query event")
		return client.QueryEvent{}
	}
}

// rawSSE opens the events stream without the SDK, so tests can assert the
// wire format itself (id lines, resume replay) and send Last-Event-ID values
// the SDK never would (an explicit 0 on a first connect, to replay the ring
// from its start). Returned events arrive on a channel fed by a reader
// goroutine; close the response body to end it.
type rawEvent struct {
	id   uint64
	name string
	ev   client.QueryEvent
}

func rawSSE(t *testing.T, url string, lastEventID string) (*http.Response, <-chan rawEvent) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set(client.HeaderLastEventID, lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events stream: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events stream content type %q, want text/event-stream", ct)
	}
	out := make(chan rawEvent, 16)
	go func() {
		defer close(out)
		sc := bufio.NewScanner(resp.Body)
		var cur rawEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if cur.name != "" {
					out <- cur
					cur = rawEvent{}
				}
			case strings.HasPrefix(line, ":"):
				// heartbeat
			case strings.HasPrefix(line, "id:"):
				cur.id, _ = strconv.ParseUint(strings.TrimSpace(line[len("id:"):]), 10, 64)
			case strings.HasPrefix(line, "event:"):
				cur.name = strings.TrimSpace(line[len("event:"):])
			case strings.HasPrefix(line, "data:"):
				if err := json.Unmarshal([]byte(strings.TrimSpace(line[len("data:"):])), &cur.ev); err != nil {
					return
				}
			}
		}
	}()
	return resp, out
}

func waitRaw(t *testing.T, ch <-chan rawEvent) rawEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("raw SSE stream closed while waiting for an event")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a raw SSE event")
		return rawEvent{}
	}
}

// communityCut builds a delete batch severing one member's ties to the
// community — the member provably leaves the (k,t)-core, so the mutation
// must change the standing result.
func communityCut(t *testing.T, s *Server, name string, members []int32, avoid map[int32]bool) (int32, string) {
	t.Helper()
	e, err := s.network(name)
	if err != nil {
		t.Fatal(err)
	}
	in := map[int32]bool{}
	for _, m := range members {
		in[m] = true
	}
	for _, victim := range members {
		if avoid[victim] {
			continue
		}
		var cuts []string
		for _, w := range e.net.Social.Neighbors(int(victim)) {
			if in[w] {
				cuts = append(cuts, fmt.Sprintf("[%d,%d]", victim, w))
			}
		}
		if len(cuts) > 0 {
			return victim, fmt.Sprintf(`{"deletes":[%s]}`, strings.Join(cuts, ","))
		}
	}
	t.Fatal("no community member with intra-community edges to cut")
	return 0, ""
}

func contains32(a []int32, v int32) bool {
	for _, x := range a {
		if x == v {
			return true
		}
	}
	return false
}

// TestStandingQueryEndToEnd drives the whole subsystem over HTTP: register →
// initial snapshot; subscribe; a membership-changing mutation pushes a
// {version, joined, left} delta at the bumped version; an attribute-only
// mutation (provably irrelevant — membership never depends on attributes)
// triggers no re-evaluation, counter-asserted through /v1/stats and /metrics;
// Last-Event-ID resume replays exactly the missed events, no gap and no
// duplicate; DELETE pushes a terminal event and closes the stream.
func TestStandingQueryEndToEnd(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	s := New(Config{})
	if err := s.AddDataset("test", net); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cli := client.New(ts.URL)
	ctx := context.Background()
	edges := ts.URL + "/v1/datasets/test/edges"

	// Register: 201 with the minted id and the initial snapshot at version 0.
	sq, err := cli.CreateStandingQuery(ctx, "test", &client.StandingQueryRequest{Q: q, K: k, T: tt})
	if err != nil {
		t.Fatalf("create standing query: %v", err)
	}
	if sq.ID != "sq-1" || sq.Dataset != "test" || sq.Version != 0 || len(sq.Members) == 0 || sq.NoCommunity {
		t.Fatalf("initial snapshot: %+v, want sq-1 on test at version 0 with members", sq)
	}
	for _, qv := range q {
		if !contains32(sq.Members, qv) {
			t.Fatalf("initial members %v lack query vertex %d", sq.Members, qv)
		}
	}
	list, err := cli.StandingQueries(ctx, "test")
	if err != nil || len(list.Queries) != 1 || list.Queries[0].ID != sq.ID {
		t.Fatalf("list = %+v (err %v), want the one registered query", list, err)
	}
	if got, err := cli.StandingQuery(ctx, "test", sq.ID); err != nil || got.K != k {
		t.Fatalf("get = %+v (err %v)", got, err)
	}

	sub, err := cli.Subscribe(ctx, "test", sq.ID, 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()

	// Sever one member's community ties: it must leave, and the delta must
	// arrive at the exact post-batch version.
	avoid := map[int32]bool{}
	for _, qv := range q {
		avoid[qv] = true
	}
	victim, batch := communityCut(t, s, "test", sq.Members, avoid)
	status, res := doJSON(t, "POST", edges, []byte(batch))
	if status != http.StatusOK {
		t.Fatalf("cut batch: status %d (%v)", status, res)
	}
	v1 := uint64(res["version"].(float64))

	ev := waitEvent(t, sub)
	if ev.ID != 1 {
		t.Fatalf("first delta id = %d, want 1", ev.ID)
	}
	if ev.Version != v1 || !ev.MembersChanged || !contains32(ev.Left, victim) {
		t.Fatalf("first delta %+v, want members_changed at version %d with %d in left", ev, v1, victim)
	}
	if len(ev.Joined) != 0 {
		t.Fatalf("delete-only batch joined %v members, want none", ev.Joined)
	}
	got, err := cli.StandingQuery(ctx, "test", sq.ID)
	if err != nil || got.Version != v1 || contains32(got.Members, victim) {
		t.Fatalf("post-delta resource %+v (err %v), want version %d without %d", got, err, v1, victim)
	}
	if n := s.Stats().StandingEvals; n != 1 {
		t.Fatalf("standing evals after first delta = %d, want 1", n)
	}

	// Attribute-only mutation on a current member: structurally irrelevant —
	// membership depends only on structure and distances — so no re-eval may
	// run. The next structural mutation's delta is the synchronization
	// barrier: once event 2 arrives, its eval has been counted, so an extra
	// attr-triggered eval would show as a third.
	status, res = doJSON(t, "POST", edges,
		[]byte(fmt.Sprintf(`{"attrs":[{"user":%d,"attrs":[0.9,0.9,0.9]}]}`, got.Members[0])))
	if status != http.StatusOK {
		t.Fatalf("attr batch: status %d (%v)", status, res)
	}
	victim2, batch2 := communityCut(t, s, "test", got.Members, avoid)
	status, res = doJSON(t, "POST", edges, []byte(batch2))
	if status != http.StatusOK {
		t.Fatalf("second cut batch: status %d (%v)", status, res)
	}
	v2 := uint64(res["version"].(float64))

	ev = waitEvent(t, sub)
	if ev.ID != 2 || ev.Version != v2 || !contains32(ev.Left, victim2) {
		t.Fatalf("second delta %+v, want id 2 at version %d with %d in left", ev, v2, victim2)
	}
	st := s.Stats()
	if st.StandingEvals != 2 {
		t.Fatalf("standing evals = %d, want 2 (the attribute batch must not re-evaluate)", st.StandingEvals)
	}
	if st.StandingNotified != 2 {
		t.Fatalf("standing notified = %d, want 2", st.StandingNotified)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(prom)
	for _, want := range []string{
		"macserver_standing_queries 1",
		"macserver_standing_evals_total 2",
		`route="standing_eval"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics lacks %q", want)
		}
	}

	// Resume: a reconnect that saw only event 1 replays exactly event 2 from
	// the ring — correct id line on the wire, no gap marker, no duplicate.
	eventsURL := ts.URL + "/v1/datasets/test/queries/" + sq.ID + "/events"
	rresp, raw := rawSSE(t, eventsURL, "1")
	rev := waitRaw(t, raw)
	if rev.name != client.EventDelta || rev.id != 2 || rev.ev.ID != 2 || rev.ev.Version != v2 {
		t.Fatalf("resume replay = %+v, want the id-2 delta at version %d", rev, v2)
	}
	rresp.Body.Close()

	// Resuming past the head replays nothing and keeps streaming live.
	rresp, raw = rawSSE(t, eventsURL, "2")
	select {
	case rev := <-raw:
		t.Fatalf("resume at head replayed %+v, want nothing", rev)
	case <-time.After(100 * time.Millisecond):
	}
	rresp.Body.Close()

	// Delete: subscribers get a terminal event, then their streams close
	// cleanly; the registry empties.
	if err := cli.DeleteStandingQuery(ctx, "test", sq.ID); err != nil {
		t.Fatalf("delete standing query: %v", err)
	}
	ev = waitEvent(t, sub)
	if !ev.Terminal || ev.Reason != "query deleted" {
		t.Fatalf("terminal event %+v, want terminal with reason \"query deleted\"", ev)
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("subscription channel still open after terminal event")
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("subscription err after terminal = %v, want nil", err)
	}
	if n := s.Stats().StandingQueries; n != 0 {
		t.Fatalf("standing queries after delete = %d, want 0", n)
	}
	if _, err := cli.StandingQuery(ctx, "test", sq.ID); client.StatusOf(err) != http.StatusNotFound {
		t.Fatalf("get after delete: err %v, want 404", err)
	}
}

// TestStandingDatasetDeleteClosesStreams: deleting a dataset tears down its
// standing queries — every subscriber receives a terminal event (not a
// silent hang) and later registrations answer 404.
func TestStandingDatasetDeleteClosesStreams(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	s := New(Config{})
	if err := s.AddDataset("test", net); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cli := client.New(ts.URL)
	ctx := context.Background()

	sq, err := cli.CreateStandingQuery(ctx, "test", &client.StandingQueryRequest{Q: q, K: k, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cli.Subscribe(ctx, "test", sq.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	status, res := doJSON(t, "DELETE", ts.URL+"/v1/datasets/test", nil)
	if status != http.StatusOK {
		t.Fatalf("dataset delete: status %d (%v)", status, res)
	}
	ev := waitEvent(t, sub)
	if !ev.Terminal || ev.Reason != "dataset deleted" {
		t.Fatalf("terminal event %+v, want terminal with reason \"dataset deleted\"", ev)
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("subscription channel still open after dataset delete")
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("subscription err = %v, want nil", err)
	}
	if n := s.Stats().StandingQueries; n != 0 {
		t.Fatalf("standing queries after dataset delete = %d, want 0", n)
	}
	if _, err := cli.CreateStandingQuery(ctx, "test", &client.StandingQueryRequest{Q: q, K: k, T: tt}); client.StatusOf(err) != http.StatusNotFound {
		t.Fatalf("register on deleted dataset: err %v, want 404", err)
	}
}

// TestStandingClientPinnedIDRejected: the "id" field of the registration
// body is a router-internal capability (mirroring the primary's minted id to
// followers); a client supplying one gets a 400 unless the request carries
// the internal marker the router sets on mirror forwards. Without this, any
// client could squat ids and 409 other registrations.
func TestStandingClientPinnedIDRejected(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	s := New(Config{})
	if err := s.AddDataset("test", net); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, err := json.Marshal(&client.StandingQueryRequest{ID: "sq-squat", Q: q, K: k, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	status, _ := doJSON(t, "POST", ts.URL+"/v1/datasets/test/queries", body)
	if status != http.StatusBadRequest {
		t.Fatalf("client-pinned id: status %d, want 400", status)
	}

	// The same body with the internal marker (what a router mirror sends) is
	// accepted, under the pinned id.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets/test/queries", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderInternal, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sq client.StandingQuery
	if err := json.NewDecoder(resp.Body).Decode(&sq); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || sq.ID != "sq-squat" {
		t.Fatalf("internal pinned create: status %d id %q, want 201 sq-squat", resp.StatusCode, sq.ID)
	}
}

// TestStandingRegistrationsSurviveRestart extends the journal replay
// kill-and-restart scenario to the standing sidecar: a server killed after
// registering a query and applying mutations comes back holding the
// registration, and the restored query's first event carries the converged
// (post-replay) dataset version so resuming subscribers learn where the
// dataset landed — even though the membership itself did not move.
func TestStandingRegistrationsSurviveRestart(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	dir := t.TempDir()
	s1 := New(Config{MutationLogDir: dir})
	if err := s1.AddDataset("test", net); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	cli1 := client.New(ts1.URL)
	ctx := context.Background()

	sq, err := cli1.CreateStandingQuery(ctx, "test", &client.StandingQueryRequest{Q: q, K: k, T: tt})
	if err != nil {
		t.Fatal(err)
	}

	// The same four-op batch the journal replay test uses — it touches the
	// community (u2 is a query vertex), so the standing query re-evaluates.
	u, v := freshEdge(t, s1, "test")
	var u2, v2 int32 = q[0], net.Social.Neighbors(int(q[0]))[0]
	batch := fmt.Sprintf(
		`{"inserts":[[%d,%d]],"deletes":[[%d,%d]],"attrs":[{"user":%d,"attrs":[0.9,0.1,0.4]}],"moves":[{"user":%d,"vertex":3}]}`,
		u, v, u2, v2, u, v)
	status, res := doJSON(t, "POST", ts1.URL+"/v1/datasets/test/edges", []byte(batch))
	if status != http.StatusOK || res["version"] != float64(4) {
		t.Fatalf("mutation: status %d (%v), want version 4", status, res)
	}
	// Wait for the eval to land (and persist its state to the sidecar) before
	// the kill, so the restart resumes from an evaluated baseline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := cli1.StandingQuery(ctx, "test", sq.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Version == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standing query never reached version 4 (at %d)", got.Version)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts1.Close() // the "kill": journal and sidecar survive on disk

	s2 := New(Config{MutationLogDir: dir})
	if err := s2.AddDataset("test", net); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	cli2 := client.New(ts2.URL)

	list, err := cli2.StandingQueries(ctx, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Queries) != 1 || list.Queries[0].ID != sq.ID || list.Queries[0].K != k {
		t.Fatalf("restored queries = %+v, want the pre-kill registration %s", list.Queries, sq.ID)
	}

	// The rebuilt hub seeds its counter from the sidecar, so the numbering
	// continues where the killed process left off (the pre-kill delta was
	// event 1). An explicit Last-Event-ID of 0 claims "saw nothing" — but
	// event 1 died with the old ring, so the server answers a lagged marker
	// first rather than silently skipping it, then the convergence delta,
	// numbered after the pre-kill event.
	rresp, raw := rawSSE(t, ts2.URL+"/v1/datasets/test/queries/"+sq.ID+"/events", "0")
	rev := waitRaw(t, raw)
	if rev.name != client.EventLagged || rev.id != 0 {
		t.Fatalf("first post-restart event = %+v, want the lagged marker for the lost pre-kill event", rev)
	}
	rev = waitRaw(t, raw)
	rresp.Body.Close()
	if rev.name != client.EventDelta || rev.ev.Version != 4 {
		t.Fatalf("post-restart event = %+v, want a delta at the converged version 4", rev)
	}
	if rev.id != 2 || rev.ev.ID != 2 {
		t.Fatalf("convergence event id = %d/%d, want 2 (continuing the pre-kill numbering)", rev.id, rev.ev.ID)
	}
	if rev.ev.MembersChanged {
		t.Fatalf("post-restart convergence event reports changed members: %+v", rev.ev)
	}

	// A subscriber that acked the pre-kill event resumes cleanly: no gap, no
	// duplicate, just the convergence delta.
	rresp, raw = rawSSE(t, ts2.URL+"/v1/datasets/test/queries/"+sq.ID+"/events", "1")
	rev = waitRaw(t, raw)
	rresp.Body.Close()
	if rev.name != client.EventDelta || rev.id != 2 {
		t.Fatalf("resume from pre-kill ack = %+v, want only the id-2 convergence delta", rev)
	}

	// The mint sequence survived too: the next registration continues it.
	sq2, err := cli2.CreateStandingQuery(ctx, "test", &client.StandingQueryRequest{Q: q, K: k + 1, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	if sq2.ID != "sq-2" {
		t.Fatalf("post-restart mint = %q, want sq-2", sq2.ID)
	}
}

// TestStandingCreateDeleteSubscribeRace churns registrations, subscriptions,
// and relevant mutations concurrently, then deletes the dataset under the
// survivors — meaningful under -race; the invariant checked here is that
// every stream terminates.
func TestStandingCreateDeleteSubscribeRace(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	s := New(Config{})
	if err := s.AddDataset("test", net); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cli := client.New(ts.URL)
	ctx := context.Background()
	edges := ts.URL + "/v1/datasets/test/edges"

	// An intra-community edge to toggle: every toggle is a relevant mutation.
	sq0, err := cli.CreateStandingQuery(ctx, "test", &client.StandingQueryRequest{Q: q, K: k, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	in := map[int32]bool{}
	for _, m := range sq0.Members {
		in[m] = true
	}
	var mu, mv int32 = -1, -1
	for _, m := range sq0.Members {
		for _, w := range net.Social.Neighbors(int(m)) {
			if in[w] {
				mu, mv = m, w
				break
			}
		}
		if mu >= 0 {
			break
		}
	}
	if mu < 0 {
		t.Fatal("no intra-community edge")
	}

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() { // creator/deleter churn
			defer wg.Done()
			for i := 0; i < 15; i++ {
				sq, err := cli.CreateStandingQuery(ctx, "test", &client.StandingQueryRequest{Q: q, K: k, T: tt})
				if err != nil {
					continue // dataset may already be gone at the tail
				}
				_ = cli.DeleteStandingQuery(ctx, "test", sq.ID)
			}
		}()
	}
	wg.Add(1)
	go func() { // mutator: strict delete/insert alternation
		defer wg.Done()
		for i := 0; i < 20; i++ {
			method, body := "DELETE", fmt.Sprintf(`{"deletes":[[%d,%d]]}`, mu, mv)
			if i%2 == 1 {
				method, body = "POST", fmt.Sprintf(`{"inserts":[[%d,%d]]}`, mu, mv)
			}
			doJSON(t, method, edges, []byte(body))
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() { // subscribers: attach to whatever currently exists
			defer wg.Done()
			for i := 0; i < 10; i++ {
				list, err := cli.StandingQueries(ctx, "test")
				if err != nil || len(list.Queries) == 0 {
					continue
				}
				sub, err := cli.Subscribe(ctx, "test", list.Queries[0].ID, 0)
				if err != nil {
					continue
				}
				select {
				case <-sub.Events():
				case <-time.After(20 * time.Millisecond):
				}
				sub.Close()
				for range sub.Events() {
				}
			}
		}()
	}
	wg.Wait()

	// Tear the dataset down under a live subscriber: its stream must end with
	// a terminal event, never hang.
	sub, err := cli.Subscribe(ctx, "test", sq0.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if status, res := doJSON(t, "DELETE", ts.URL+"/v1/datasets/test", nil); status != http.StatusOK {
		t.Fatalf("dataset delete: status %d (%v)", status, res)
	}
	sawTerminal := false
	timeout := time.After(10 * time.Second)
	for !sawTerminal {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("stream closed without a terminal event (err %v)", sub.Err())
			}
			sawTerminal = ev.Terminal
		case <-timeout:
			t.Fatal("timed out waiting for the terminal event after dataset delete")
		}
	}
	if n := s.Stats().StandingQueries; n != 0 {
		t.Fatalf("standing queries after dataset delete = %d, want 0", n)
	}
}
