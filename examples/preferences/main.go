// Preferences: the full story of the paper's introduction. A user cannot
// state exact attribute weights ("0.2 for h-index? or 0.19?") — but they
// can answer simple A-or-B questions. This example learns the preference
// region R from a handful of pairwise choices (the footnote-1 input the MAC
// model expects) and then runs the community search over the learned
// region, showing how the answer set narrows as more choices arrive.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"roadsocial"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// A hiring committee network: 120 researchers, attributes
	// (publications, citations, teaching score).
	const n, d = 120, 3
	sb := roadsocial.NewSocialBuilder(n, d)
	// Dense department core (0..14) around the committee (0..2).
	for i := 0; i < 15; i++ {
		for j := i + 1; j < 15; j++ {
			if rng.Float64() < 0.7 {
				sb.AddEdge(i, j)
			}
		}
	}
	for v := 15; v < n; v++ {
		for e := 0; e < 3; e++ {
			sb.AddEdge(v, rng.Intn(v))
		}
	}
	for v := 0; v < n; v++ {
		base := rng.Float64()
		sb.SetAttrs(v, []float64{
			10 * clamp(base+rng.NormFloat64()*0.2),
			10 * clamp(base+rng.NormFloat64()*0.3),
			10 * rng.Float64(),
		})
		sb.SetLabel(v, fmt.Sprintf("r%03d", v))
	}
	gs, err := sb.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Campus road grid.
	gr := roadsocial.NewRoadGraph(100)
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			v := r*10 + c
			if c+1 < 10 {
				_ = gr.AddEdge(v, v+1, 1)
			}
			if r+1 < 10 {
				_ = gr.AddEdge(v, v+10, 1)
			}
		}
	}
	locs := make([]roadsocial.Location, n)
	for v := range locs {
		locs[v] = roadsocial.VertexLocation(rng.Intn(100))
	}
	net := &roadsocial.Network{Social: gs, Road: gr, Locs: locs}

	// The user's hidden true weights (they could never articulate these).
	truth := []float64{0.55, 0.3} // publications 0.55, citations 0.30, teaching 0.15

	// Simulate answering A-or-B questions about candidate profiles.
	var comparisons []roadsocial.Comparison
	ask := func() {
		a := []float64{10 * rng.Float64(), 10 * rng.Float64(), 10 * rng.Float64()}
		b := []float64{10 * rng.Float64(), 10 * rng.Float64(), 10 * rng.Float64()}
		if score(a, truth) >= score(b, truth) {
			comparisons = append(comparisons, roadsocial.Comparison{Preferred: a, Other: b})
		} else {
			comparisons = append(comparisons, roadsocial.Comparison{Preferred: b, Other: a})
		}
	}

	query := func(region *roadsocial.Region) int {
		q := &roadsocial.Query{Q: []int32{0, 1, 2}, K: 4, T: 25, Region: region, J: 1}
		res, err := roadsocial.GlobalSearch(net, q)
		if err != nil {
			return 0
		}
		return len(res.NCMACs())
	}

	fmt.Println("learning the preference region from pairwise choices:")
	for _, rounds := range []int{2, 5, 10, 20} {
		for len(comparisons) < rounds {
			ask()
		}
		region, err := roadsocial.LearnRegion(d, comparisons, 0)
		if err != nil {
			log.Fatal(err)
		}
		vol := 1.0
		for j := 0; j < region.Dim(); j++ {
			vol *= region.Hi[j] - region.Lo[j]
		}
		fmt.Printf("  after %2d choices: region box [%.2f,%.2f]x[%.2f,%.2f] (area %.4f), distinct answers: %d\n",
			rounds, region.Lo[0], region.Hi[0], region.Lo[1], region.Hi[1], vol, query(region))
	}
	fmt.Println("\nmore choices ⇒ tighter region ⇒ fewer distinct optimal communities,")
	fmt.Println("without ever forcing the user to state exact weights.")
}

func score(x, w []float64) float64 {
	w3 := 1 - w[0] - w[1]
	return w[0]*x[0] + w[1]*x[1] + w3*x[2]
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
