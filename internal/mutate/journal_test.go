package mutate

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"roadsocial/internal/mac"
	"roadsocial/internal/road"
	"roadsocial/internal/social"
)

func sampleRecords() []Record {
	return []Record{
		{Version: 1, Op: Op{Kind: InsertEdge, U: 3, V: 9}},
		{Version: 2, Op: Op{Kind: DeleteEdge, U: 0, V: 7}},
		{Version: 3, Op: Op{Kind: SetAttrs, U: 4, Attrs: []float64{0.25, -1.5, 3e9}}},
		{Version: 4, Op: Op{Kind: MoveUser, U: 11, Loc: LocSpec{U: 6}}},
		{Version: 5, Op: Op{Kind: MoveUser, U: 2, Loc: LocSpec{OnEdge: true, U: 1, V: 8, Off: 0.625}}},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.mutlog")
	j, recs, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := sampleRecords()
	if err := j.Append(want); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2, got, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}

	// A base version prunes folded records, on disk too.
	j3, got3, err := OpenJournal(path, 3)
	if err != nil {
		t.Fatalf("reopen with base: %v", err)
	}
	defer j3.Close()
	if !reflect.DeepEqual(got3, want[3:]) {
		t.Fatalf("base-filtered replay: got %+v want %+v", got3, want[3:])
	}
	j4, got4, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer j4.Close()
	if !reflect.DeepEqual(got4, want[3:]) {
		t.Fatalf("compaction did not drop folded records: got %+v", got4)
	}
}

func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.mutlog")
	j, _, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := sampleRecords()
	if err := j.Append(want); err != nil {
		t.Fatalf("append: %v", err)
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	for cut := 1; cut < 12; cut++ {
		torn := raw[:len(raw)-cut]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatalf("write torn: %v", err)
		}
		j2, got, err := OpenJournal(path, 0)
		if err != nil {
			t.Fatalf("cut %d: open torn: %v", cut, err)
		}
		j2.Close()
		if !reflect.DeepEqual(got, want[:len(want)-1]) {
			t.Fatalf("cut %d: torn tail replay kept %d records, want %d", cut, len(got), len(want)-1)
		}
	}
	// Flipping a payload byte must fail the CRC and drop the record.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-6] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatalf("write corrupt: %v", err)
	}
	j3, got, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatalf("open corrupt: %v", err)
	}
	j3.Close()
	if len(got) >= len(want) {
		t.Fatalf("corrupt record survived CRC check")
	}
}

func TestJournalBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.mutlog")
	if err := os.WriteFile(path, []byte("NOTAMUTJ plus junk"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := OpenJournal(path, 0); err == nil {
		t.Fatalf("bad magic accepted")
	}
}

// testNetwork builds a small network with both graphs for Apply tests.
func testNetwork(t *testing.T, n int, p float64, seed int64) *mac.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sb := social.NewBuilder(n, 2)
	for u := 0; u < n; u++ {
		sb.SetAttrs(u, []float64{rng.Float64(), rng.Float64()})
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				sb.AddEdge(u, v)
			}
		}
	}
	sg, err := sb.Build()
	if err != nil {
		t.Fatalf("social build: %v", err)
	}
	rg := road.NewGraph(8)
	for i := 0; i < 8; i++ {
		rg.AddEdge(i, (i+1)%8, 1.0)
	}
	locs := make([]road.Location, n)
	for i := range locs {
		locs[i] = road.VertexLocation(rng.Intn(8))
	}
	net := &mac.Network{Social: sg, Road: rg, Locs: locs}
	if err := net.Validate(); err != nil {
		t.Fatalf("network: %v", err)
	}
	return net
}

func TestApplyCOWAndMaintenance(t *testing.T) {
	net := testNetwork(t, 40, 0.15, 5)
	st := InitState(net.Social, 0)
	oldSocial, oldLocs := net.Social, net.Locs

	var u, v int32 = -1, -1
	for a := 0; a < net.Social.N() && u < 0; a++ {
		for b := a + 1; b < net.Social.N(); b++ {
			if !net.Social.HasEdge(a, b) {
				u, v = int32(a), int32(b)
				break
			}
		}
	}
	ops := []Op{
		{Kind: InsertEdge, U: u, V: v},
		{Kind: SetAttrs, U: 3, Attrs: []float64{9, 9}},
		{Kind: MoveUser, U: 5, Loc: LocSpec{U: 2}},
		{Kind: DeleteEdge, U: u, V: v},
	}
	net2, sum, err := Apply(net, st, ops)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if net.Social != oldSocial || &net.Locs[0] != &oldLocs[0] {
		t.Fatalf("Apply mutated the input network")
	}
	if sum.Applied != 4 || st.Version != 4 {
		t.Fatalf("applied=%d version=%d, want 4/4", sum.Applied, st.Version)
	}
	if net2.Social.HasEdge(int(u), int(v)) {
		t.Fatalf("insert+delete should cancel")
	}
	if net2.Social.Attrs(3)[0] != 9 || net2.Locs[5].U != 2 {
		t.Fatalf("attr/move not applied")
	}
	if !sum.Touched[u] || !sum.Touched[v] || !sum.Touched[3] || !sum.Touched[5] {
		t.Fatalf("touched set missing targets: %v", sum.Touched)
	}
	wantCore, _ := net2.Social.CoreDecomposition(nil)
	if !reflect.DeepEqual(st.Core, wantCore) {
		t.Fatalf("maintained core diverged from recompute")
	}
	wantTruss, _ := net2.Social.TrussDecomposition(nil)
	if !reflect.DeepEqual(st.Truss, wantTruss) {
		t.Fatalf("maintained truss diverged from recompute")
	}
}

func TestApplyRejectsBadOps(t *testing.T) {
	net := testNetwork(t, 10, 0.3, 1)
	st := &State{} // replay mode: no maintenance
	bad := [][]Op{
		{{Kind: InsertEdge, U: 1, V: 1}},
		{{Kind: InsertEdge, U: 0, V: 99}},
		{{Kind: DeleteEdge, U: 0, V: 0}},
		{{Kind: SetAttrs, U: 2, Attrs: []float64{1}}},
		{{Kind: MoveUser, U: 99, Loc: LocSpec{U: 0}}},
		{{Kind: MoveUser, U: 1, Loc: LocSpec{U: 99}}},
		{{Kind: MoveUser, U: 1, Loc: LocSpec{OnEdge: true, U: 0, V: 5, Off: 0.5}}},
		{{Kind: Kind(77), U: 0, V: 1}},
	}
	for i, ops := range bad {
		if _, _, err := Apply(net, st, ops); err == nil {
			t.Errorf("case %d: invalid op accepted: %+v", i, ops[0])
		}
	}
}

// TestReplayConvergence drives the full crash-recovery loop: apply a random
// op stream journaling as we go, then rebuild from the initial network plus
// the journal and check the replayed network matches byte-for-byte.
func TestReplayConvergence(t *testing.T) {
	net0 := testNetwork(t, 30, 0.2, 9)
	path := filepath.Join(t.TempDir(), "ds.mutlog")
	j, _, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	net := net0
	st := InitState(net.Social, 0)
	for i := 0; i < 50; i++ {
		op := randomOp(rng, net)
		n2, _, err := Apply(net, st, []Op{op})
		if err != nil {
			continue // raced into an invalid op (e.g. duplicate insert); skip
		}
		if err := j.Append([]Record{{Version: st.Version, Op: op}}); err != nil {
			t.Fatalf("append: %v", err)
		}
		net = n2
	}
	j.Close()

	// "Restart": fold the journal over the pristine network, no maintenance.
	j2, recs, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	replayed := net0
	rst := &State{}
	for _, r := range recs {
		n2, _, err := Apply(replayed, rst, []Op{r.Op})
		if err != nil {
			t.Fatalf("replay v%d: %v", r.Version, err)
		}
		replayed = n2
	}
	if rst.Version != st.Version {
		t.Fatalf("replayed to version %d, live reached %d", rst.Version, st.Version)
	}
	if !socialEqual(replayed.Social, net.Social) {
		t.Fatalf("replayed social graph differs from live")
	}
	if !reflect.DeepEqual(replayed.Locs, net.Locs) {
		t.Fatalf("replayed locations differ from live")
	}
}

func randomOp(rng *rand.Rand, net *mac.Network) Op {
	n := net.Social.N()
	switch rng.Intn(4) {
	case 0:
		return Op{Kind: InsertEdge, U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	case 1:
		return Op{Kind: DeleteEdge, U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	case 2:
		return Op{Kind: SetAttrs, U: int32(rng.Intn(n)), Attrs: []float64{rng.Float64(), rng.Float64()}}
	default:
		return Op{Kind: MoveUser, U: int32(rng.Intn(n)), Loc: LocSpec{U: int32(rng.Intn(net.Road.N()))}}
	}
}

func socialEqual(a, b *social.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		if !reflect.DeepEqual(a.Neighbors(v), b.Neighbors(v)) {
			return false
		}
		if !reflect.DeepEqual(a.Attrs(v), b.Attrs(v)) {
			return false
		}
	}
	return true
}

// FuzzReplayJournal feeds arbitrary bytes through the journal parser: it
// must never panic, and whatever records survive a parse must round-trip
// losslessly through append+reopen.
func FuzzReplayJournal(f *testing.F) {
	seedBuf := []byte(journalMagic)
	for _, r := range sampleRecords() {
		seedBuf = appendRecord(seedBuf, r)
	}
	f.Add(seedBuf)
	f.Add([]byte(journalMagic))
	f.Add(seedBuf[:len(seedBuf)-3])
	f.Add([]byte{})
	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(dir, "fuzz.mutlog")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := OpenJournal(path, 0)
		if err != nil {
			if bytes.HasPrefix(data, []byte(journalMagic)) && err.Error() == "" {
				t.Fatalf("empty error")
			}
			return
		}
		j.Close()
		// Round-trip: re-journal the parsed records and reparse.
		path2 := filepath.Join(dir, "fuzz2.mutlog")
		os.Remove(path2)
		j2, _, err := OpenJournal(path2, 0)
		if err != nil {
			t.Fatalf("open clean: %v", err)
		}
		if len(recs) > 0 {
			if err := j2.Append(recs); err != nil {
				t.Fatalf("re-append: %v", err)
			}
		}
		j2.Close()
		j3, got, err := OpenJournal(path2, 0)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		j3.Close()
		if len(got) != len(recs) {
			t.Fatalf("round-trip kept %d of %d records", len(got), len(recs))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], recs[i]) {
				t.Fatalf("record %d mutated in round-trip:\n got %+v\nwant %+v", i, got[i], recs[i])
			}
		}
	})
}
