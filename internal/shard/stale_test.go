package shard

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"roadsocial/client"
	"roadsocial/internal/mac"
	"roadsocial/internal/promtest"
	"roadsocial/internal/road"
	"roadsocial/internal/service"
)

// TestStaleReplicaExcludedAndResynced: a follower that misses a mutation
// forward has permanently diverged from the primary. It must be marked
// stale, drop out of read failover, be skipped by further forwards, and
// surface in stats and /metrics — and rejoin the replica set only after a
// snapshot re-copy brings it current, even if it comes back holding a
// diverged copy of the dataset.
func TestStaleReplicaExcludedAndResynced(t *testing.T) {
	net_, q, k, tt := testNetwork(t)
	if net_.Oracle == nil {
		net_.Oracle = road.BuildGTree(net_.Road, 0)
	}
	cfg := service.Config{
		MaxInFlight:    4,
		MaxQueue:       64,
		DefaultTimeout: 120 * time.Second,
		LoadSpec: func(string, *service.DatasetSpec) (*mac.Network, uint64, error) {
			return net_, 0, nil
		},
	}
	leaves := []*leafProc{startLeaf(t, cfg), startLeaf(t, cfg)}
	backends := []Backend{
		NewRemote("shard-0", "http://"+leaves[0].addr, nil),
		NewRemote("shard-1", "http://"+leaves[1].addr, nil),
	}
	rt, err := NewRouter(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetReplication(2)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	ctx := context.Background()
	sdk := client.New(ts.URL, client.WithRetries(0))

	if _, err := sdk.CreateDataset(ctx, "d", &client.DatasetSpec{}); err != nil {
		t.Fatal(err)
	}
	primary := rt.OwnerIndex("d")
	follower := 1 - primary
	waitFor(t, 30*time.Second, "follower sync", func() bool {
		return holdsDataset(backends[follower], "d")
	})

	// An insertable edge for the mutation.
	var iu, iv int32 = -1, -1
	sg := net_.Social
	for u := 0; u < sg.N() && iu < 0; u++ {
		for v := u + 2; v < sg.N(); v += 17 {
			if !sg.HasEdge(u, v) {
				iu, iv = int32(u), int32(v)
				break
			}
		}
	}
	if iu < 0 {
		t.Fatal("no missing edge in test network")
	}

	// Kill the follower and mutate through the router: the primary applies
	// the batch (2xx to the client), the forward fails, the follower is
	// marked stale.
	leaves[follower].kill()
	mres, err := sdk.Mutate(ctx, "d", &client.MutateRequest{Inserts: [][2]int32{{iu, iv}}})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Version != 1 {
		t.Fatalf("mutation version = %d, want 1", mres.Version)
	}
	if !rt.isReplicaStale("d", follower) {
		t.Fatal("follower not marked stale after a failed mutation forward")
	}
	// Read failover must never land on the diverged copy.
	if got := rt.readCandidates("d"); len(got) != 1 || got[0] != primary {
		t.Fatalf("readCandidates = %v, want just the primary %d", got, primary)
	}
	// The divergence is operator-visible: stats and /metrics.
	st := rt.Stats()
	if got := st.StaleReplicas["d"]; len(got) != 1 || got[0] != backends[follower].Name() {
		t.Fatalf("stats stale replicas = %v, want [%s]", got, backends[follower].Name())
	}
	// Reads keep answering from the primary.
	if _, err := sdk.KTCore(ctx, "d", &client.SearchRequest{Q: q, K: k, T: tt}); err != nil {
		t.Fatalf("read with a stale follower: %v", err)
	}
	fams := scrape(t, ts.URL)
	if v, err := promtest.Value(fams, "macserver_router_stale_replicas", nil); err != nil || v != 1 {
		t.Fatalf("stale_replicas gauge = %v (%v), want 1", v, err)
	}
	if v, err := promtest.Value(fams, "macserver_router_stale_replicas_marked_total", nil); err != nil || v < 1 {
		t.Fatalf("stale_replicas_marked_total = %v (%v), want >= 1", v, err)
	}
	// A second mutation skips the diverged follower (no forward attempt can
	// heal it) and the mark survives.
	if mres, err = sdk.Mutate(ctx, "d", &client.MutateRequest{Deletes: [][2]int32{{iu, iv}}}); err != nil {
		t.Fatal(err)
	}
	if mres.Version != 2 {
		t.Fatalf("second mutation version = %d, want 2", mres.Version)
	}
	if !rt.isReplicaStale("d", follower) {
		t.Fatal("stale mark lost across a second mutation")
	}

	// Revive the follower holding a DIVERGED copy: fresh process, version-0
	// re-create directly on the leaf. The re-sync must drop that copy and
	// stream the primary's snapshot, not skip the holder.
	leaves[follower].restart(t)
	fsdk := client.New("http://"+leaves[follower].addr, client.WithRetries(0))
	if _, err := fsdk.CreateDataset(ctx, "d", &client.DatasetSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.runReplicate("d", "", nil, func(string) {}); err != nil {
		t.Fatalf("re-sync: %v", err)
	}
	if rt.isReplicaStale("d", follower) {
		t.Fatal("stale mark survived the re-sync")
	}
	if got := rt.readCandidates("d"); len(got) != 2 {
		t.Fatalf("readCandidates after re-sync = %v, want both replicas", got)
	}
	// The re-synced copy is current: the follower answers directly at the
	// primary's version.
	fres, err := fsdk.KTCore(ctx, "d", &client.SearchRequest{Q: q, K: k, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Version != 2 {
		t.Fatalf("follower version after re-sync = %d, want 2", fres.Version)
	}
	fams = scrape(t, ts.URL)
	if v, err := promtest.Value(fams, "macserver_router_stale_replicas", nil); err != nil || v != 0 {
		t.Fatalf("stale_replicas gauge after re-sync = %v (%v), want 0", v, err)
	}
}
