// Package mac implements the paper's primary contribution: multi-attributed
// community (MAC) search in road-social networks. It provides the maximal
// (k,t)-core computation (Section III), the DFS-based global search of
// Algorithm 1 (GS-T / GS-NC), and the local search framework of Algorithms
// 3-5 (LS-T / LS-NC) with the Expand and Verify procedures.
package mac

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"roadsocial/internal/domgraph"
	"roadsocial/internal/geom"
	"roadsocial/internal/road"
	"roadsocial/internal/social"
)

// Network bundles the two graphs of a road-social network together with the
// user→location mapping L and the distance oracle used for range queries.
type Network struct {
	Social *social.Graph
	Road   *road.Graph
	// Locs maps each social vertex to its location in the road network.
	Locs []road.Location
	// Oracle answers range queries; nil defaults to plain Dijkstra.
	Oracle road.Oracle
}

// Validate checks structural consistency.
func (n *Network) Validate() error {
	if n.Social == nil || n.Road == nil {
		return errors.New("mac: network requires both social and road graphs")
	}
	if len(n.Locs) != n.Social.N() {
		return fmt.Errorf("mac: %d locations for %d social vertices", len(n.Locs), n.Social.N())
	}
	return nil
}

// oracle returns the distance oracle, threading the query's parallelism
// and cancellation into the built-in RangeQuerier. A user-supplied Oracle
// manages its own parallelism knob (e.g. GTree.Parallelism); when it is
// Cancelable (GTree is), the query's cancel channel is bound through a
// per-query view, so index-accelerated range queries abort mid-traversal
// like the built-in Dijkstras do.
func (n *Network) oracle(parallelism int, cancel <-chan struct{}) road.Oracle {
	if n.Oracle != nil {
		if c, ok := n.Oracle.(road.Cancelable); ok {
			return c.WithCancel(cancel)
		}
		return n.Oracle
	}
	return road.RangeQuerier{G: n.Road, Parallelism: parallelism, Cancel: cancel}
}

// Query is a MAC search request.
type Query struct {
	// Q are the query vertices (social ids). Must be non-empty.
	Q []int32
	// K is the coreness threshold (k >= 1).
	K int
	// T is the query-distance threshold in road-network cost units.
	T float64
	// Region is the preference region R. Its dimension must be d-1 where d
	// is the attribute dimensionality of the social graph.
	Region *geom.Region
	// J is the number of top MACs per partition (Problem 1). J <= 1 asks for
	// the non-contained MAC only (Problem 2).
	J int
	// Parallelism is the number of worker goroutines the search engines use
	// for independent sub-problems (search-tree branches, candidate
	// verification, and — for the built-in range-filter oracle —
	// per-query-location Dijkstras). <= 0 selects GOMAXPROCS; 1 forces
	// fully sequential execution. A custom Network.Oracle manages its own
	// parallelism knob. Results are canonically ordered and identical for
	// every parallelism level.
	Parallelism int
	// Cancel, when non-nil, lets the caller abandon a running search: once
	// the channel is closed, every worker stops at its next task or phase
	// boundary (one in-flight Dijkstra, cascade, or DAG build still
	// completes first) and the search returns ErrCanceled. Without it, an
	// abandoned search (e.g. after a caller-side timeout) would keep
	// burning Parallelism cores until it finishes on its own.
	Cancel <-chan struct{}
}

// Validate checks the query against the network.
func (q *Query) Validate(n *Network) error {
	if len(q.Q) == 0 {
		return errors.New("mac: empty query vertex set")
	}
	for _, v := range q.Q {
		if v < 0 || int(v) >= n.Social.N() {
			return fmt.Errorf("mac: query vertex %d out of range", v)
		}
	}
	if q.K < 1 {
		return fmt.Errorf("mac: coreness threshold k=%d must be >= 1", q.K)
	}
	if q.T < 0 {
		return fmt.Errorf("mac: query distance threshold t=%g must be >= 0", q.T)
	}
	if q.Region == nil {
		return errors.New("mac: nil preference region")
	}
	if got, want := q.Region.Dim(), n.Social.D()-1; got != want {
		return fmt.Errorf("mac: region dimension %d, want d-1 = %d", got, want)
	}
	// Weights must be non-negative with sum <= 1 so that the implied last
	// weight w_d is non-negative; score monotonicity (used for R-tree
	// pruning) depends on it.
	for _, c := range q.Region.Corners() {
		sum := 0.0
		for _, w := range c {
			if w < -geom.Eps {
				return fmt.Errorf("mac: region corner %v has negative weight", c)
			}
			sum += w
		}
		if sum > 1+geom.Eps {
			return fmt.Errorf("mac: region corner %v has weight sum %g > 1", c, sum)
		}
	}
	return nil
}

// Community is a vertex set (social ids, sorted ascending).
type Community []int32

// Key returns a canonical string key for set comparison in maps.
func (c Community) Key() string {
	b := make([]byte, 0, len(c)*4)
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// Contains reports whether v is a member (binary search).
func (c Community) Contains(v int32) bool {
	i := sort.Search(len(c), func(i int) bool { return c[i] >= v })
	return i < len(c) && c[i] == v
}

// CellResult associates one partition of R with its communities: Ranked[0]
// is the non-contained MAC of the partition, Ranked[i] the (i+1)-th ranked
// MAC (each containing the previous).
type CellResult struct {
	Cell   *geom.Cell
	Ranked []Community
}

// NCMAC returns the non-contained MAC of the partition.
func (cr CellResult) NCMAC() Community { return cr.Ranked[0] }

// Stats records search effort counters reported by the experiments.
type Stats struct {
	KTCoreSize     int // |V(H_k^t)|
	KTCoreEdges    int
	DomGraphArcs   int
	Partitions     int // number of output partitions of R
	Hyperplanes    int // distinct hyperplanes inserted into arrangements
	CellsExplored  int // arrangement leaf cells visited during search
	Deletions      int // vertices deleted across all branches (global search)
	Candidates     int // communities generated by Expand (local search)
	Promising      int // candidates passing Corollary 2
	CascadeSims    int // structural cascade simulations (Verify)
	DominanceTests int64
}

// Result is the outcome of a MAC search.
type Result struct {
	// KTCore is the vertex set of the maximal (k,t)-core H_k^t.
	KTCore Community
	// Cells are the output partitions with their communities. For local
	// search the union of cells may not cover R exactly (it reports only
	// validated non-contained MACs); for global search the cells partition R.
	Cells []CellResult
	// Stats carries effort counters.
	Stats Stats
}

// NCMACs returns the distinct non-contained MACs across all partitions.
func (r *Result) NCMACs() []Community {
	seen := make(map[string]bool)
	var out []Community
	for _, c := range r.Cells {
		if len(c.Ranked) == 0 {
			continue
		}
		k := c.Ranked[0].Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, c.Ranked[0])
		}
	}
	return out
}

// sortedIDs converts a local vertex list to a sorted global Community.
func sortedIDs(local []int32, toGlobal []int32) Community {
	out := make(Community, len(local))
	for i, v := range local {
		out[i] = toGlobal[v]
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// searchSpace holds the shared state one search run starts from: the
// maximal (k,t)-core relabeled into the DAG's local index space. The dag,
// hg, qLocal, and degBase fields point into a regionSpace that may be
// shared read-only with other concurrent queries (see Prepared); stats are
// per-run, accumulated per-scratch by workers and merged under statsMu.
type searchSpace struct {
	net    *Network
	query  *Query
	dag    *domgraph.DAG
	hg     *social.Graph // localized H_k^t graph; vertex i == DAG local i
	qLocal []int32
	// degBase[v] is v's degree in hg, precomputed so cascade simulations
	// seed their working degrees with one copy instead of n Degree calls.
	degBase []int32

	statsMu sync.Mutex
	stats   Stats
}

// cancelled reports whether the query's Cancel channel has been closed.
// A nil channel never selects, so queries without one are unaffected.
func (ss *searchSpace) cancelled() bool { return queryCancelled(ss.query) }

func queryCancelled(q *Query) bool {
	select {
	case <-q.Cancel:
		return true
	default:
		return false
	}
}

// ErrNoCommunity is returned when no (k,t)-core containing Q exists.
var ErrNoCommunity = errors.New("mac: no (k,t)-core containing the query vertices")

// ErrCanceled is returned when the query's Cancel channel closes mid-search.
var ErrCanceled = errors.New("mac: search canceled")

// oracleErr maps a distance-oracle failure onto the search error space:
// road.ErrCanceled becomes ErrCanceled (the oracle's Cancel channel is the
// query's), anything else passes through.
func oracleErr(err error) error {
	if errors.Is(err, road.ErrCanceled) {
		return ErrCanceled
	}
	return err
}
