package mac

import (
	"sort"

	"roadsocial/internal/road"
	"roadsocial/internal/social"
)

// KTCore computes the vertex set of the maximal (k,t)-core H_k^t for query
// vertices q (Definition 7): the maximal connected k-core containing q after
// filtering out every user whose query distance in the road network exceeds
// t (Lemma 1), restricted to the component of q (Lemma 2). It returns
// ErrNoCommunity when the core is empty.
//
// Following Section III, the coreness upper bound ⌊(1+√(9+8(m'−n')))/2⌋ of
// the filtered subgraph is checked before running the decomposition.
func KTCore(net *Network, q []int32, k int, t float64) ([]int32, error) {
	return ktCore(net, q, k, t, 0, nil)
}

// KTCoreWithParallelism is KTCore with an explicit parallelism knob for the
// built-in range-filter oracle (<= 0 selects GOMAXPROCS, 1 forces the
// sequential baseline — used by measurement harnesses).
func KTCoreWithParallelism(net *Network, q []int32, k int, t float64, parallelism int) ([]int32, error) {
	return ktCore(net, q, k, t, parallelism, nil)
}

// ktCore is KTCore with the query's parallelism and cancellation knobs
// threaded into the built-in range-filter oracle (0 = GOMAXPROCS).
func ktCore(net *Network, q []int32, k int, t float64, parallelism int, cancel <-chan struct{}) ([]int32, error) {
	gs := net.Social
	// Range query (Lemma 1): query distance of every user, pruned at t.
	queryLocs := make([]road.Location, len(q))
	for i, v := range q {
		queryLocs[i] = net.Locs[v]
	}
	dq, err := net.oracle(parallelism, cancel).QueryDistances(queryLocs, net.Locs, t)
	if err != nil {
		return nil, oracleErr(err)
	}
	// Checkpoint for oracles that ignore Cancel (e.g. GTree): stop before
	// the core decomposition instead of computing a result nobody wants.
	select {
	case <-cancel:
		return nil, ErrCanceled
	default:
	}
	allowed := make([]bool, gs.N())
	nAllowed, mAllowed := 0, 0
	for v := 0; v < gs.N(); v++ {
		if dq[v] <= t {
			allowed[v] = true
			nAllowed++
		}
	}
	for _, v := range q {
		if !allowed[v] {
			return nil, ErrNoCommunity
		}
	}
	for v := 0; v < gs.N(); v++ {
		if !allowed[v] {
			continue
		}
		for _, w := range gs.Neighbors(v) {
			if allowed[w] && int32(v) < w {
				mAllowed++
			}
		}
	}
	// A-priori coreness bound on the filtered subgraph.
	if k > social.CorenessUpperBound(nAllowed, mAllowed) {
		return nil, ErrNoCommunity
	}
	comp := gs.MaximalConnectedKCore(q, k, allowed)
	if comp == nil {
		return nil, ErrNoCommunity
	}
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	return comp, nil
}
