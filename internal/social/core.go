package social

import "math"

// CoreDecomposition computes the core number of every vertex with the
// O(m) bin-sort peeling algorithm of Batagelj and Zaversnik, restricted to
// the vertices where allowed[v] is true (pass nil for the whole graph).
// Vertices outside the restriction get core number -1.
func (g *Graph) CoreDecomposition(allowed []bool) (core []int, kmax int) {
	n := g.N()
	core = make([]int, n)
	deg := make([]int, n)
	maxDeg := 0
	in := func(v int32) bool { return allowed == nil || allowed[v] }
	for v := 0; v < n; v++ {
		if !in(int32(v)) {
			core[v] = -1
			continue
		}
		d := 0
		for _, w := range g.adj[v] {
			if in(w) {
				d++
			}
		}
		deg[v] = d
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Bin sort vertices by degree.
	bin := make([]int, maxDeg+2)
	for v := 0; v < n; v++ {
		if core[v] != -1 {
			bin[deg[v]]++
		}
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		count := bin[d]
		bin[d] = start
		start += count
	}
	pos := make([]int, n)
	vert := make([]int32, start)
	next := append([]int(nil), bin[:maxDeg+1]...)
	for v := 0; v < n; v++ {
		if core[v] == -1 {
			continue
		}
		pos[v] = next[deg[v]]
		vert[pos[v]] = int32(v)
		next[deg[v]]++
	}
	// Peel in non-decreasing degree order.
	for i := 0; i < len(vert); i++ {
		v := vert[i]
		dv := deg[v]
		core[v] = dv
		if dv > kmax {
			kmax = dv
		}
		for _, u := range g.adj[v] {
			if !in(u) || deg[u] <= dv {
				continue
			}
			// Move u to the front of its bin, then decrement its degree.
			du := deg[u]
			pu := pos[u]
			pw := bin[du]
			w := vert[pw]
			if u != w {
				vert[pu], vert[pw] = w, u
				pos[u], pos[w] = pw, pu
			}
			bin[du]++
			deg[u]--
		}
	}
	return core, kmax
}

// CorenessUpperBound returns the a-priori bound on the maximum possible
// coreness of a graph with nn vertices and mm edges (Section III):
// floor((1 + sqrt(9 + 8(m-n))) / 2). If k exceeds this bound no k-core
// exists, so the search can stop before any decomposition.
func CorenessUpperBound(nn, mm int) int {
	if mm < nn {
		// Sparse graphs: a k-core needs at least k+1 vertices of degree k,
		// and m >= n is required for k >= 2; degree-1 cores always exist
		// when there is any edge.
		if mm == 0 {
			return 0
		}
		return 1
	}
	return int(math.Floor((1 + math.Sqrt(float64(9+8*(mm-nn)))) / 2))
}

// MaximalKCore returns the vertex set (as a bool mask) of the maximal k-core
// within the allowed restriction (nil = whole graph), not necessarily
// connected. Returns nil if empty.
func (g *Graph) MaximalKCore(k int, allowed []bool) []bool {
	core, kmax := g.CoreDecomposition(allowed)
	if kmax < k {
		return nil
	}
	mask := make([]bool, g.N())
	any := false
	for v, c := range core {
		if c >= k {
			mask[v] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	return mask
}

// ConnectedComponentOf returns the vertices reachable from seed within mask,
// as a slice, using BFS. The mask must contain seed.
func (g *Graph) ConnectedComponentOf(seed int32, mask []bool) []int32 {
	visited := make(map[int32]bool)
	queue := []int32{seed}
	visited[seed] = true
	var comp []int32
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		comp = append(comp, v)
		for _, w := range g.adj[v] {
			if mask[w] && !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return comp
}

// MaximalConnectedKCore returns the vertex list of the maximal connected
// k-core containing every vertex of Q (the maximal k-ĉore w.r.t. Q of
// Lemma 2), restricted to allowed (nil = whole graph). It returns nil when
// no such community exists (some q has coreness < k, or Q spans different
// k-core components).
func (g *Graph) MaximalConnectedKCore(q []int32, k int, allowed []bool) []int32 {
	if len(q) == 0 {
		return nil
	}
	mask := g.MaximalKCore(k, allowed)
	if mask == nil {
		return nil
	}
	for _, v := range q {
		if !mask[v] {
			return nil
		}
	}
	comp := g.ConnectedComponentOf(q[0], mask)
	inComp := make(map[int32]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	for _, v := range q {
		if !inComp[v] {
			return nil
		}
	}
	return comp
}
