package service

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"roadsocial/client"
	"roadsocial/internal/promtest"
	"roadsocial/internal/road"
)

// syncBuffer is a goroutine-safe log sink for capturing slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func keyCount(t *testing.T, st Stats, dataset, variant, route, outcome string) int64 {
	t.Helper()
	ks, ok := st.DatasetStats[client.StatsKey(dataset, variant, route, outcome)]
	if !ok {
		t.Fatalf("no keyed series %s (have %v)", client.StatsKey(dataset, variant, route, outcome), keysOf(st.DatasetStats))
	}
	return ks.Latency.Count
}

func keysOf(m map[string]client.KeyStats) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestKeyedStatsRecordedForAllOutcomes: every terminal answer — success,
// validation failure, unknown dataset, admission rejection — lands in the
// keyed registry under its outcome label, while the legacy global latency
// histogram still counts completed searches only.
func TestKeyedStatsRecordedForAllOutcomes(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	gate := &gateOracle{
		inner:   road.RangeQuerier{G: net.Road},
		gate:    make(chan struct{}),
		started: make(chan struct{}, 8),
	}
	gated := *net
	gated.Oracle = gate
	s := New(Config{MaxInFlight: 1, MaxQueue: 1, DefaultTimeout: 30 * time.Second})
	if err := s.AddDataset("test", &gated); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Saturate: request A parks inside the oracle holding the only
	// in-flight slot, request B fills the queue, request C gets 429.
	// Distinct (k,t) per request so they do not coalesce in the cache.
	done := make(chan int, 2)
	go func() {
		status, _ := postJSON(t, ts.URL+"/v1/search", searchBody(t, "test", q, k, tt, nil))
		done <- status
	}()
	<-gate.started
	go func() {
		status, _ := postJSON(t, ts.URL+"/v1/search", searchBody(t, "test", q, k, tt+1, nil))
		done <- status
	}()
	for s.Stats().Queued == 0 { // request B sits in the queue
		runtime.Gosched()
	}
	if status, body := postJSON(t, ts.URL+"/v1/search", searchBody(t, "test", q, k, tt+2, nil)); status != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d (%v), want 429", status, body)
	}
	close(gate.gate)
	for i := 0; i < 2; i++ {
		if status := <-done; status != http.StatusOK {
			t.Fatalf("admitted request: status %d, want 200", status)
		}
	}

	// Validation failure on a known dataset keeps the dataset label.
	if status, _ := postJSON(t, ts.URL+"/v1/search", searchBody(t, "test", q, 0, tt, nil)); status != http.StatusBadRequest {
		t.Fatalf("k=0 search: status %d, want 400", status)
	}
	// Unknown dataset folds into the bounded _unknown label.
	if status, _ := postJSON(t, ts.URL+"/v1/search", searchBody(t, "nope", q, k, tt, nil)); status != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", status)
	}

	st := s.Stats()
	if n := keyCount(t, st, "test", "core", "search", OutcomeOK); n != 2 {
		t.Fatalf("ok series count = %d, want 2", n)
	}
	if n := keyCount(t, st, "test", "core", "search", client.CodeSaturated); n != 1 {
		t.Fatalf("saturated series count = %d, want 1", n)
	}
	if n := keyCount(t, st, "test", "core", "search", client.CodeInvalid); n != 1 {
		t.Fatalf("invalid series count = %d, want 1", n)
	}
	if n := keyCount(t, st, UnknownDataset, "core", "search", client.CodeNotFound); n != 1 {
		t.Fatalf("not_found series count = %d, want 1", n)
	}
	// The legacy global histogram is completed-searches-only: exactly the
	// two 200s, none of the three failures.
	if st.Latency.Count != 2 {
		t.Fatalf("global latency count = %d, want 2 (completed only)", st.Latency.Count)
	}
	// Stage histograms exist for the completed request.
	for _, stage := range []string{StageQueue, StagePrepare, StageSearch, StageEncode} {
		if st.Stages[stage].Count == 0 {
			t.Fatalf("stage %q has no recordings (stages: %v)", stage, st.Stages)
		}
	}
}

// TestMetricsEndpointParses: the hand-rolled /metrics output survives a
// strict line-format parse — headers ordered, groups contiguous, histogram
// buckets cumulative with +Inf == _count — and carries the keyed series.
func TestMetricsEndpointParses(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	s := New(Config{})
	if err := s.AddDataset("test", net); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if status, body := postJSON(t, ts.URL+"/v1/search", searchBody(t, "test", q, k, tt, nil)); status != http.StatusOK {
			t.Fatalf("search %d: status %d (%v)", i, status, body)
		}
	}
	if status, _ := postJSON(t, ts.URL+"/v1/search", searchBody(t, "nope", q, k, tt, nil)); status != http.StatusNotFound {
		t.Fatal("expected 404 for unknown dataset")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("content type %q, want %q", ct, PromContentType)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := promtest.Parse(string(text))
	if err != nil {
		t.Fatalf("strict parse of /metrics failed: %v\n%s", err, text)
	}

	if v, err := promtest.Value(fams, "macserver_requests_total", nil); err != nil || v < 4 {
		t.Fatalf("macserver_requests_total = %v (%v), want >= 4", v, err)
	}
	okCount, err := promtest.HistCount(fams, "macserver_dataset_request_duration_ms", map[string]string{
		"dataset": "test", "variant": "core", "route": "search", "outcome": OutcomeOK,
	})
	if err != nil || okCount != 3 {
		t.Fatalf("keyed ok histogram count = %v (%v), want 3", okCount, err)
	}
	if _, err := promtest.HistCount(fams, "macserver_dataset_request_duration_ms", map[string]string{
		"dataset": UnknownDataset, "outcome": client.CodeNotFound,
	}); err != nil {
		t.Fatalf("keyed not_found histogram: %v", err)
	}
	for _, stage := range []string{StageQueue, StagePrepare, StageSearch, StageEncode} {
		if _, err := promtest.HistCount(fams, "macserver_stage_duration_ms", map[string]string{"stage": stage}); err != nil {
			t.Fatalf("stage histogram %q: %v", stage, err)
		}
	}
	if f := fams["macserver_request_duration_ms"]; f == nil || f.Type != "histogram" {
		t.Fatal("global request duration histogram missing")
	}
}

// TestServerTimingAndRequestID: a successful search answers with the
// Server-Timing stage breakdown; request IDs echo when supplied and mint
// when absent.
func TestServerTimingAndRequestID(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	s := New(Config{})
	if err := s.AddDataset("test", net); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/search", bytes.NewReader(searchBody(t, "test", q, k, tt, nil)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(client.HeaderRequestID, "req-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(client.HeaderRequestID); got != "req-abc-123" {
		t.Fatalf("request ID echo: got %q, want req-abc-123", got)
	}
	timing := resp.Header.Get(client.HeaderServerTiming)
	for _, stage := range []string{StageQueue, StagePrepare, StageSearch, StageEncode} {
		if !strings.Contains(timing, stage+";dur=") {
			t.Fatalf("Server-Timing %q missing stage %q", timing, stage)
		}
	}

	// No client ID: the edge mints a 16-hex-digit one.
	resp2, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(searchBody(t, "test", q, k, tt, nil)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if id := resp2.Header.Get(client.HeaderRequestID); len(id) != 16 {
		t.Fatalf("minted request ID %q, want 16 hex chars", id)
	}
}

// TestAccessLogAndSlowQuery: with a Logger configured, each request emits
// one structured access record carrying its request ID, and searches over
// the -slow-query threshold emit the full reproduction key.
func TestAccessLogAndSlowQuery(t *testing.T) {
	net, q, k, tt := testNetwork(t)
	sink := &syncBuffer{}
	logger := slog.New(slog.NewTextHandler(sink, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s := New(Config{Logger: logger, SlowQuery: time.Nanosecond})
	if err := s.AddDataset("test", net); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/search", bytes.NewReader(searchBody(t, "test", q, k, tt, nil)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(client.HeaderRequestID, "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d", resp.StatusCode)
	}

	logs := sink.String()
	if !strings.Contains(logs, "msg=request") {
		t.Fatalf("no access record in logs:\n%s", logs)
	}
	if !strings.Contains(logs, "request_id=trace-me-42") {
		t.Fatalf("access record missing request ID:\n%s", logs)
	}
	if !strings.Contains(logs, "route=search") || !strings.Contains(logs, "status=200") || !strings.Contains(logs, "outcome=ok") {
		t.Fatalf("access record missing route/status/outcome:\n%s", logs)
	}
	// The slow-query record carries the full (Q, k, t) reproduction key.
	if !strings.Contains(logs, "slow query") {
		t.Fatalf("no slow-query record (threshold 1ns):\n%s", logs)
	}
	if !strings.Contains(logs, "k="+strconv.Itoa(k)) || !strings.Contains(logs, "dataset=test") || !strings.Contains(logs, "q=") || !strings.Contains(logs, "t=") {
		t.Fatalf("slow-query record missing key fields:\n%s", logs)
	}
}
