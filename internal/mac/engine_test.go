package mac

import (
	"errors"
	"testing"

	"roadsocial/internal/geom"
)

// TestEngineFor: both built-in variants resolve; unknown variants error.
func TestEngineFor(t *testing.T) {
	for _, v := range []Variant{VariantCore, VariantTruss} {
		eng, err := EngineFor(v)
		if err != nil {
			t.Fatalf("EngineFor(%s): %v", v, err)
		}
		if eng.Variant() != v {
			t.Fatalf("EngineFor(%s).Variant() = %s", v, eng.Variant())
		}
	}
	if _, err := EngineFor("quantum"); err == nil {
		t.Fatal("unknown variant must error")
	}
}

// TestTrussPreparedMatchesOneShot: truss searches through the engine's
// Prepared handle are byte-identical to one-shot GlobalSearchTruss, across
// regions and J values, and repeated searches reuse the prepared state.
func TestTrussPreparedMatchesOneShot(t *testing.T) {
	net := paperNetwork(t)
	q := paperQuery(t, 1)
	q.K = 4
	eng, err := EngineFor(VariantTruss)
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.Prepare(net, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Variant() != VariantTruss {
		t.Fatalf("prepared variant = %s", p.Variant())
	}
	if len(p.Members()) == 0 {
		t.Fatal("empty prepared truss membership")
	}
	if p.Cost() < 1 {
		t.Fatalf("cost = %d, want >= 1", p.Cost())
	}
	regions := []*geom.Region{q.Region}
	if r2, err := geom.NewBox([]float64{0.15, 0.25}, []float64{0.3, 0.35}); err == nil {
		regions = append(regions, r2)
	}
	for _, region := range regions {
		for _, j := range []int{1, 2} {
			qq := *q
			qq.Region, qq.J = region, j
			want, err := GlobalSearchTruss(net, &qq)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Search(&qq, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := resultEq(got, want); err != nil {
				t.Fatalf("truss j=%d: %v", j, err)
			}
		}
	}
}

// TestTrussPreparedRejectsLocalMode: the truss engine has no local search.
func TestTrussPreparedRejectsLocalMode(t *testing.T) {
	net := paperNetwork(t)
	q := paperQuery(t, 1)
	q.K = 4
	p, err := PrepareTruss(net, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Search(q, SearchOptions{Mode: ModeLocal}); err == nil {
		t.Fatal("truss local search must be rejected")
	}
}

// TestPreparedCancelInheritance: a Prepared built without Cancel still
// honors a per-search Cancel through the region build.
func TestPreparedCancelInheritance(t *testing.T) {
	net := paperNetwork(t)
	q := paperQuery(t, 1)
	for _, variant := range []Variant{VariantCore, VariantTruss} {
		qq := *q
		if variant == VariantTruss {
			qq.K = 4
		}
		eng, err := EngineFor(variant)
		if err != nil {
			t.Fatal(err)
		}
		p, err := eng.Prepare(net, &qq)
		if err != nil {
			t.Fatal(err)
		}
		canceled := qq
		cancel := make(chan struct{})
		close(cancel)
		canceled.Cancel = cancel
		if _, err := p.Search(&canceled, SearchOptions{}); !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: got %v, want ErrCanceled", variant, err)
		}
	}
}
