package service

import (
	"roadsocial/client"
	"roadsocial/internal/mac"
	"roadsocial/internal/mutate"
	"roadsocial/internal/standing"
)

// One relevance test, two consumers. A mutation batch falsifies a prepared
// community (cache entry) or a standing query's last result under exactly the
// same conditions — MAC membership depends only on social structure and road
// distances, never on attributes — so both the invalidation predicate and the
// standing-query notification test are derived here from one set of rules:
//
//  1. A community intersecting a structurally touched vertex may have changed
//     (a member changed role, a deletion can cascade into it, a member moved).
//  2. A community whose cohesiveness threshold k is at or below the batch's
//     core bound may have GAINED members it never held (edge inserts and user
//     moves grow maximal subgraphs; the truss variant checks k-1 against the
//     core bound — a k-truss edge's endpoints have core number >= k-1).
//  3. Attribute-only updates (Summary.AttrDeltas) cannot change membership.
//     For the cache they matter only through the preference-region state a
//     Prepared carries: an update whose score is provably unchanged over a
//     cached region (geom REqual) keeps that region warm, and the rest are
//     pruned per-region via Prepared.RebaseAttrs instead of dropping the
//     whole entry. For standing queries — which hold membership only — they
//     are irrelevant outright.

// kBoundFor adapts the summary's core bound to an engine variant: -1 when no
// bound check is required, otherwise the largest k whose maximal subgraph
// could have gained members.
func kBoundFor(sum *mutate.Summary, variant mac.Variant) int {
	if sum.CoreBound < 0 {
		return -1
	}
	b := sum.CoreBound
	if variant == mac.VariantTruss {
		b++
	}
	return b
}

// invalidationPred decides which ready prepared states a mutation summary
// falsifies. net is the just-installed post-batch network: entries kept
// across an attribute-only change are rebased onto it so later searches read
// the new vectors. Removal is always safe — the worst case is a rebuild on
// the next request — so the predicate errs on the side of true.
func invalidationPred(sum *mutate.Summary, net *mac.Network) func(*mac.Prepared) bool {
	return func(p *mac.Prepared) bool {
		if p.IntersectsVertices(sum.StructTouched()) {
			return true
		}
		if b := kBoundFor(sum, p.Variant()); b >= 0 && p.K() <= b {
			return true
		}
		if len(sum.AttrDeltas) == 0 {
			return false
		}
		// Only attribute replacements remain, and none of this entry's
		// members changed structurally. Members whose vectors moved need the
		// per-region visibility test; an entry none of whose members changed
		// at all is untouched (its searches never read the mutated vectors).
		var changes []mac.AttrChange
		for v, d := range sum.AttrDeltas {
			if p.ContainsVertex(v) {
				changes = append(changes, mac.AttrChange{User: v, Old: d.Old, New: d.New})
			}
		}
		if len(changes) == 0 {
			return false
		}
		return !p.RebaseAttrs(net, changes)
	}
}

// affectsStanding decides whether an installed mutation batch can have
// changed a standing query's result. Rules 1 and 2 above, applied to the
// query's last evaluated member set; attribute deltas are never consulted
// (rule 3 — the standing resource is membership only). A query that has no
// evaluated result yet always matches: the eval pass establishes its
// baseline.
func affectsStanding(sum *mutate.Summary, e *standing.Entry) bool {
	members, _, evaluated := e.State()
	if !evaluated {
		return true
	}
	spec := e.Spec()
	variant := mac.VariantCore
	if spec.Algo == client.AlgoTruss {
		variant = mac.VariantTruss
	}
	if b := kBoundFor(sum, variant); b >= 0 && spec.K <= b {
		return true
	}
	return intersectsSorted(members, sum.StructTouched())
}

// intersectsSorted reports whether the sorted member list meets the touched
// set, probing whichever side is smaller.
func intersectsSorted(members []int32, touched map[int32]bool) bool {
	if len(members) == 0 || len(touched) == 0 {
		return false
	}
	if len(touched) < len(members) {
		for v := range touched {
			if containsSorted(members, v) {
				return true
			}
		}
		return false
	}
	for _, v := range members {
		if touched[v] {
			return true
		}
	}
	return false
}

// containsSorted is a binary-search membership test on a sorted id list.
func containsSorted(a []int32, v int32) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == v
}
