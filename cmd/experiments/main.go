// Command experiments regenerates every table and figure of the paper's
// evaluation (Section VII) on synthetic analogues of the datasets. Each
// experiment prints the same series the paper plots; EXPERIMENTS.md records
// the shape comparison against the published results.
//
// Usage:
//
//	experiments -exp=all                 # everything (slow)
//	experiments -exp=table2              # dataset statistics
//	experiments -exp=vary_k,vary_sigma   # selected figures
//	experiments -exp=vary_k -scale=medium -queries=5
//	experiments -exp=compare_k -datasets=SF+Delicious
//	experiments -exp=vary_k -parallelism=1          # force sequential engines
//	experiments -exp=vary_k -json=BENCH_PR1.json    # machine-readable timings
//
// Experiments: table2, vary_k, vary_t, vary_d, vary_q, vary_j, vary_sigma,
// partitions (Fig 11a,b), ktcore_size (Fig 11c), memory (Fig 11d),
// ratio (Fig 12), compare_k (Fig 13-14b), compare_d (Fig 13-14c), and
// service_latency (query-service load generator: cold vs warm prepared
// cache, saturation behavior; beyond the paper).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"roadsocial/internal/exp"
)

// benchRecord is one per-sweep entry of the -json output: wall-clock and
// heap allocation for a full experiment sweep, tagged with the knobs that
// produced it so perf trajectories across PRs compare like with like.
type benchRecord struct {
	Experiment  string  `json:"experiment"`
	WallSeconds float64 `json:"wall_seconds"`
	AllocMB     float64 `json:"alloc_mb"`
	Parallelism int     `json:"parallelism"`
	Scale       string  `json:"scale"`
	QueriesPer  int     `json:"queries_per"`
	Seed        int64   `json:"seed"`
	// Metrics carries experiment-specific headline numbers (e.g. the
	// service-latency cold/warm p50/p99 and saturation counts).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type benchFile struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	Records    []benchRecord `json:"records"`
}

func main() {
	var (
		expFlag     = flag.String("exp", "table2", "comma-separated experiment names, or 'all'")
		scale       = flag.String("scale", "small", "dataset scale: tiny, small, medium")
		queries     = flag.Int("queries", 3, "query sets averaged per measurement")
		seed        = flag.Int64("seed", 20210421, "workload seed")
		datasets    = flag.String("datasets", "", "comma-separated dataset filter (default all)")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-invocation timeout (prints Inf)")
		parallelism = flag.Int("parallelism", 0, "query-engine workers; 0 = GOMAXPROCS, 1 = sequential")
		jsonPath    = flag.String("json", "", "write per-sweep wall-clock + allocs to this JSON file")
	)
	flag.Parse()

	opts := exp.Options{
		QueriesPer:  *queries,
		Seed:        *seed,
		Timeout:     *timeout,
		Parallelism: *parallelism,
	}
	switch *scale {
	case "tiny":
		opts.Scale = exp.Tiny
	case "medium":
		opts.Scale = exp.Medium
	default:
		opts.Scale = exp.Small
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}

	type runner struct {
		name string
		fn   func(exp.Options) (*exp.Table, error)
	}
	runners := []runner{
		{"table2", exp.Table2},
		{"vary_k", exp.VaryK},
		{"vary_t", exp.VaryT},
		{"vary_d", exp.VaryD},
		{"vary_q", exp.VaryQ},
		{"vary_j", exp.VaryJ},
		{"vary_sigma", exp.VarySigma},
		{"partitions", exp.PartitionsAndNCMACs},
		{"ktcore_size", exp.KTCoreSizes},
		{"memory", exp.MemoryVsD},
		{"ratio", exp.RatioLS},
		{"compare_k", func(o exp.Options) (*exp.Table, error) { return exp.CompareMethods(o, "k") }},
		{"compare_d", func(o exp.Options) (*exp.Table, error) { return exp.CompareMethods(o, "d") }},
		{"service_latency", exp.ServiceLatency},
	}

	want := map[string]bool{}
	all := *expFlag == "all"
	for _, name := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	bench := benchFile{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	ran := 0
	for _, r := range runners {
		if !all && !want[r.name] {
			continue
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		tab, err := r.fn(opts)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		tab.Print(os.Stdout)
		fmt.Printf("(%s took %s)\n", r.name, elapsed.Round(time.Millisecond))
		bench.Records = append(bench.Records, benchRecord{
			Experiment:  r.name,
			WallSeconds: elapsed.Seconds(),
			AllocMB:     float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
			Parallelism: *parallelism,
			Scale:       *scale,
			QueriesPer:  *queries,
			Seed:        *seed,
			Metrics:     tab.Metrics,
		})
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment(s) %q; see -h\n", *expFlag)
		os.Exit(1)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(&bench, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d records)\n", *jsonPath, len(bench.Records))
	}
}
