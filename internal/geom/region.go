package geom

import (
	"errors"
	"fmt"
)

// Region is the user preference region R: a convex polytope in the
// (d-1)-dimensional preference domain. The common case is an axis-parallel
// hyper-rectangle (as in the paper's experiments, where R is a hypercube of
// side length σ·axis), but general convex polytopes are supported by adding
// extra halfspaces to a bounding box and supplying the corner list.
type Region struct {
	// Lo, Hi bound the region (and for pure boxes define it exactly).
	Lo, Hi []float64
	// Extra holds halfspaces beyond the box for general convex polytopes.
	Extra []Halfspace
	// corners caches the polytope vertices used for r-dominance tests.
	corners [][]float64
	// pivot caches the mean of the corners (guaranteed inside R by
	// convexity), used as the BBS sorting key vector (Section IV-B).
	pivot []float64
}

// NewBox returns the axis-parallel hyper-rectangle region [lo, hi].
// A zero-dimensional box (d = 1 attributes) is allowed and behaves as the
// single empty weight vector.
func NewBox(lo, hi []float64) (*Region, error) {
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("geom: box bounds have mismatched dimensions %d and %d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return nil, fmt.Errorf("geom: box dimension %d has lo %g > hi %g", i, lo[i], hi[i])
		}
	}
	r := &Region{Lo: append([]float64(nil), lo...), Hi: append([]float64(nil), hi...)}
	r.corners = boxCorners(r.Lo, r.Hi)
	r.pivot = meanOf(r.corners, len(lo))
	return r, nil
}

// NewHypercube returns the hypercube of the given side length centered at
// center, clipped to stay within the open unit simplex conventions is the
// caller's responsibility.
func NewHypercube(center []float64, side float64) (*Region, error) {
	if side < 0 {
		return nil, errors.New("geom: negative hypercube side")
	}
	lo := make([]float64, len(center))
	hi := make([]float64, len(center))
	for i, c := range center {
		lo[i] = c - side/2
		hi[i] = c + side/2
	}
	return NewBox(lo, hi)
}

// NewPolytope returns a general convex region: the box [lo,hi] intersected
// with the extra halfspaces, with the polytope corner list supplied by the
// caller (the paper assumes the region is given as a convex polygon/polytope,
// so its vertices are part of the input).
func NewPolytope(lo, hi []float64, extra []Halfspace, corners [][]float64) (*Region, error) {
	r, err := NewBox(lo, hi)
	if err != nil {
		return nil, err
	}
	if len(corners) == 0 {
		return nil, errors.New("geom: polytope region requires its corner list")
	}
	for _, c := range corners {
		if len(c) != len(lo) {
			return nil, fmt.Errorf("geom: corner dimension %d != region dimension %d", len(c), len(lo))
		}
	}
	r.Extra = append([]Halfspace(nil), extra...)
	r.corners = make([][]float64, len(corners))
	for i, c := range corners {
		r.corners[i] = append([]float64(nil), c...)
	}
	r.pivot = meanOf(r.corners, len(lo))
	return r, nil
}

// Dim returns the dimension of the preference domain (d-1).
func (r *Region) Dim() int { return len(r.Lo) }

// Corners returns the polytope vertices of R. Callers must not mutate.
func (r *Region) Corners() [][]float64 { return r.corners }

// Pivot returns the pivot vector of R: the per-dimension mean of its
// polytope vertices. By convexity the pivot lies inside R.
func (r *Region) Pivot() []float64 { return r.pivot }

// Contains reports whether w lies in R (within tolerance).
func (r *Region) Contains(w []float64) bool {
	for i := range r.Lo {
		if w[i] < r.Lo[i]-Eps || w[i] > r.Hi[i]+Eps {
			return false
		}
	}
	for _, h := range r.Extra {
		if !h.Contains(w) {
			return false
		}
	}
	return true
}

// Dominance classification outcomes for a pair of scores over R
// (Fig. 3 of the paper).
type Dominance int8

const (
	// RDominates: the first score is >= the second everywhere in R.
	RDominates Dominance = iota
	// RDominated: the first score is <= the second everywhere in R.
	RDominated
	// RIncomparable: each side wins somewhere in R.
	RIncomparable
	// REqual: the two scores coincide everywhere in R.
	REqual
)

// Compare classifies the relationship between scores s and t over R by
// evaluating the difference at every polytope vertex of R — exact for
// affine functions over a convex region, O(p·d) as in Section IV-A.
func (r *Region) Compare(s, t Score) Dominance {
	diff := s.Sub(t)
	geAll, leAll := true, true
	for _, c := range r.corners {
		v := diff.At(c)
		if v < -Eps {
			geAll = false
		}
		if v > Eps {
			leAll = false
		}
		if !geAll && !leAll {
			return RIncomparable
		}
	}
	switch {
	case geAll && leAll:
		return REqual
	case geAll:
		return RDominates
	default:
		return RDominated
	}
}

// Dominates reports whether s r-dominates t over R (s >= t everywhere).
// Scores equal everywhere count as dominance in the weak (paper) sense.
func (r *Region) Dominates(s, t Score) bool {
	c := r.Compare(s, t)
	return c == RDominates || c == REqual
}

// StrictlyDominates reports s >= t everywhere with strict inequality
// somewhere — the asymmetric relation used to build the r-dominance DAG.
func (r *Region) StrictlyDominates(s, t Score) bool {
	return r.Compare(s, t) == RDominates
}

// Halfspaces returns the full H-representation of R: box constraints plus
// extras. Used to seed arrangement cells.
func (r *Region) Halfspaces() []Halfspace {
	out := make([]Halfspace, 0, 2*len(r.Lo)+len(r.Extra))
	for i := range r.Lo {
		a := make([]float64, len(r.Lo))
		a[i] = -1
		out = append(out, Halfspace{A: a, B: -r.Lo[i]})
		b := make([]float64, len(r.Lo))
		b[i] = 1
		out = append(out, Halfspace{A: b, B: r.Hi[i]})
	}
	out = append(out, r.Extra...)
	return out
}

func boxCorners(lo, hi []float64) [][]float64 {
	dim := len(lo)
	n := 1 << dim
	out := make([][]float64, 0, n)
	for mask := 0; mask < n; mask++ {
		c := make([]float64, dim)
		for j := 0; j < dim; j++ {
			if mask&(1<<j) != 0 {
				c[j] = hi[j]
			} else {
				c[j] = lo[j]
			}
		}
		out = append(out, c)
	}
	return out
}

func meanOf(points [][]float64, dim int) []float64 {
	m := make([]float64, dim)
	if len(points) == 0 {
		return m
	}
	for _, p := range points {
		for j, v := range p {
			m[j] += v
		}
	}
	for j := range m {
		m[j] /= float64(len(points))
	}
	return m
}
