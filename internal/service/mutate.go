package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"path/filepath"
	"sync"
	"time"

	"roadsocial/client"
	"roadsocial/internal/mac"
	"roadsocial/internal/mutate"
	"roadsocial/internal/standing"
)

// The write path. POST /v1/datasets/{name}/edges applies a MutateRequest —
// edge inserts and deletes, attribute updates, location moves — as one
// atomic batch; DELETE on the same path is the delete-only form. The
// discipline is the mutate package's apply-first, journal-second,
// install-third: the batch is validated by applying it to a copy-on-write
// scratch network (concurrent searches keep reading the old one), the
// accepted ops are fsynced to the dataset's journal, and only then is the
// new network installed and the prepared cache selectively invalidated.

// maxMutationOps bounds the ops of one mutation request, mirroring
// MaxBatchItems on the read side: a public endpoint must not let one request
// hold a dataset's write lock indefinitely.
const maxMutationOps = 1024

// RouteMutate is the metrics route label of the write path.
const RouteMutate = "mutate"

// mutState serializes and persists one dataset's mutations. st is nil until
// the first live mutation (lazy InitState: datasets that never mutate pay
// for no decompositions); journal is nil when Config.MutationLogDir is
// unset (mutations then apply without durability).
type mutState struct {
	mu      sync.Mutex
	st      *mutate.State
	journal *mutate.Journal
}

// close releases the journal file handle without deleting the file — for a
// registration that lost the name race after opening it (the registered
// dataset keeps its own handle on its own journal).
func (ms *mutState) close() {
	if ms.journal != nil {
		_ = ms.journal.Close()
	}
}

// drop closes the journal and deletes its file — the dataset is being
// unregistered, and a re-create under the same name must start fresh.
func (ms *mutState) drop() {
	if ms.journal != nil {
		_ = ms.journal.Remove()
	}
}

// journalPath is the dataset's journal file. The name is path-escaped so a
// hostile dataset name cannot traverse out of the log directory.
func journalPath(dir, name string) string {
	return filepath.Join(dir, url.PathEscape(name)+".mlog")
}

// openMutations builds a dataset's mutation state at registration. With a
// log directory configured it opens (creating or compacting) the dataset's
// journal at base version and replays any surviving records onto the
// network, returning the replayed network and version; without one it
// returns the inputs untouched.
func (s *Server) openMutations(name string, net *mac.Network, base uint64) (*mutState, *mac.Network, uint64, error) {
	ms := &mutState{}
	if s.cfg.MutationLogDir == "" {
		return ms, net, base, nil
	}
	j, recs, err := mutate.OpenJournal(journalPath(s.cfg.MutationLogDir, name), base)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("service: dataset %q mutation journal: %w", name, err)
	}
	version := base
	if len(recs) > 0 {
		// Replay mode: State.Core stays nil, so Apply performs the structural
		// mutations only; full decompositions are seeded lazily at the first
		// live mutation.
		st := &mutate.State{Version: base}
		ops := make([]mutate.Op, len(recs))
		for i, r := range recs {
			ops[i] = r.Op
		}
		replayed, _, err := mutate.Apply(net, st, ops)
		if err != nil {
			_ = j.Close()
			return nil, nil, 0, fmt.Errorf("service: dataset %q journal replay: %w", name, err)
		}
		net = replayed
		version = st.Version
		s.logger().Info("mutation journal replayed",
			"dataset", name, "ops", len(recs), "version", version)
	}
	ms.journal = j
	return ms, net, version, nil
}

// Mutate applies one mutation batch to a dataset — the transport-agnostic
// core of POST and DELETE /v1/datasets/{name}/edges. The batch is atomic
// (any invalid op rejects the whole batch with nothing journaled or
// visible) and ordered: inserts, then deletes, then attribute updates, then
// moves. Concurrent searches are never disturbed — they keep the network
// pointer they resolved and report the version it carried.
func (s *Server) Mutate(name string, req *client.MutateRequest) (*client.MutateResponse, error) {
	return s.MutateTagged(name, req, "")
}

// MutateTagged is Mutate plus the X-Request-ID of the HTTP request that
// carried the batch, threaded into the standing-query eval job (and its log
// records) the batch may trigger.
func (s *Server) MutateTagged(name string, req *client.MutateRequest, requestID string) (*client.MutateResponse, error) {
	start := time.Now()
	resp, err := s.mutate(name, req, requestID)
	outcome := OutcomeOK
	if err != nil {
		outcome = client.CodeForStatus(statusOf(err))
	}
	dataset := name
	if dataset == "" || (err != nil && !s.holdsDataset(dataset)) {
		dataset = UnknownDataset
	}
	s.metrics.record(dataset, "", RouteMutate, outcome, msSince(start))
	if resp != nil {
		resp.ElapsedMs = msSince(start)
	}
	return resp, err
}

func (s *Server) mutate(name string, req *client.MutateRequest, requestID string) (*client.MutateResponse, error) {
	ops, err := opsFromRequest(req)
	if err != nil {
		return nil, err
	}
	for {
		e, err := s.network(name)
		if err != nil {
			return nil, err
		}
		ms := e.mut
		ms.mu.Lock()
		// Re-resolve under the dataset's write lock: every install happens
		// while holding it, so cur is the latest state. A delete or
		// delete + re-create meanwhile means this ms no longer governs the
		// registered entry — retry against the current one.
		cur, err := s.network(name)
		if err != nil {
			ms.mu.Unlock()
			return nil, err
		}
		if cur.mut != ms {
			ms.mu.Unlock()
			continue
		}
		resp, err := s.mutateLocked(name, cur, ms, ops, requestID)
		ms.mu.Unlock()
		return resp, err
	}
}

// mutateLocked runs one batch under the dataset's write lock.
func (s *Server) mutateLocked(name string, cur dsEntry, ms *mutState, ops []mutate.Op, requestID string) (*client.MutateResponse, error) {
	if ms.st == nil {
		ms.st = mutate.InitState(cur.net.Social, cur.version)
	}
	// Apply straight onto the committed cohesiveness state: Apply records an
	// undo log as it goes, so a failed op mid-batch rolls itself back and a
	// journal failure below reverts explicitly. No O(edges) state clone —
	// the write path's cost stays proportional to the affected subcore.
	newNet, sum, err := mutate.Apply(cur.net, ms.st, ops)
	if err != nil {
		return nil, invalidf("dataset %q: %v", name, err)
	}
	if ms.journal != nil {
		recs := make([]mutate.Record, len(ops))
		for i, op := range ops {
			recs[i] = mutate.Record{Version: cur.version + uint64(i) + 1, Op: op}
		}
		if err := ms.journal.Append(recs); err != nil {
			// Nothing installed: the dataset keeps serving its old state, and
			// the client knows the batch was not accepted.
			sum.Revert(ms.st)
			return nil, fmt.Errorf("service: dataset %q journal append: %w", name, err)
		}
	}
	// Install: swap the entry under the registry lock (gen unchanged — the
	// prepared-cache keys stay live; stale ones are invalidated below).
	s.mu.Lock()
	e, ok := s.nets[name]
	if ok && e.mut == ms {
		e.net = newNet
		e.version = ms.st.Version
		s.nets[name] = e
	}
	s.mu.Unlock()
	if !ok {
		// Deleted while the batch was applying; the journal went with it.
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}

	invalidated := s.cache.invalidate(name, invalidationPred(sum, newNet), !sum.AttrOnlyBatch())
	s.mutations.Add(int64(sum.Applied))

	// Match the batch against registered standing queries. Marked queries are
	// re-evaluated off the write path on the job runner; a burst of batches
	// coalesces onto one pass (only the first Notify of the burst starts it).
	if matched, start := s.standing.Notify(name, func(e *standing.Entry) bool {
		return affectsStanding(sum, e)
	}); start {
		s.submitStandingEval(name, requestID)
	} else if matched > 0 {
		s.logger().Debug("standing eval coalesced",
			"dataset", name, "matched", matched, "request_id", requestID)
	}
	return &client.MutateResponse{
		Dataset:      name,
		Version:      ms.st.Version,
		Applied:      sum.Applied,
		CoreChanged:  sum.CoreChanged,
		TrussChanged: sum.TrussChanged,
		Invalidated:  invalidated,
	}, nil
}

// opsFromRequest validates the request shape and flattens it into ordered
// ops: inserts, deletes, attribute updates, moves.
func opsFromRequest(req *client.MutateRequest) ([]mutate.Op, error) {
	total := len(req.Inserts) + len(req.Deletes) + len(req.Attrs) + len(req.Moves)
	if total == 0 {
		return nil, invalidf("empty mutation (no inserts, deletes, attrs, or moves)")
	}
	if total > maxMutationOps {
		return nil, invalidf("%d mutation ops exceed the limit of %d", total, maxMutationOps)
	}
	ops := make([]mutate.Op, 0, total)
	for _, e := range req.Inserts {
		ops = append(ops, mutate.Op{Kind: mutate.InsertEdge, U: e[0], V: e[1]})
	}
	for _, e := range req.Deletes {
		ops = append(ops, mutate.Op{Kind: mutate.DeleteEdge, U: e[0], V: e[1]})
	}
	for _, a := range req.Attrs {
		if len(a.Attrs) == 0 {
			return nil, invalidf("attrs update for user %d carries no attributes", a.User)
		}
		ops = append(ops, mutate.Op{Kind: mutate.SetAttrs, U: a.User, Attrs: a.Attrs})
	}
	for _, m := range req.Moves {
		op := mutate.Op{Kind: mutate.MoveUser, U: m.User}
		if len(m.Edge) > 0 {
			if len(m.Edge) != 2 {
				return nil, invalidf("move for user %d: edge wants [u, v], got %d elements", m.User, len(m.Edge))
			}
			op.Loc = mutate.LocSpec{OnEdge: true, U: m.Edge[0], V: m.Edge[1], Off: m.Off}
		} else {
			op.Loc = mutate.LocSpec{U: m.Vertex}
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// serveMutate handles POST /v1/datasets/{name}/edges.
func (s *Server) serveMutate(w http.ResponseWriter, r *http.Request) {
	s.serveMutation(w, r, false)
}

// serveDeleteEdges handles DELETE /v1/datasets/{name}/edges: the delete-only
// form of the same batch endpoint.
func (s *Server) serveDeleteEdges(w http.ResponseWriter, r *http.Request) {
	s.serveMutation(w, r, true)
}

func (s *Server) serveMutation(w http.ResponseWriter, r *http.Request, deleteOnly bool) {
	var req client.MutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if deleteOnly && (len(req.Inserts) > 0 || len(req.Attrs) > 0 || len(req.Moves) > 0) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("DELETE accepts only deletes; use POST for mixed batches"))
		return
	}
	resp, err := s.MutateTagged(r.PathValue("name"), &req, RequestIDFrom(r))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
