package exp

import (
	"strings"
	"testing"
	"time"
)

func tinyTestOpts() Options {
	return Options{
		Scale:         Tiny,
		QueriesPer:    1,
		Seed:          42,
		Timeout:       20 * time.Second,
		WeightSamples: 3,
	}
}

func TestDatasetRegistry(t *testing.T) {
	if len(Datasets) != 5 {
		t.Fatalf("%d datasets, want the paper's 5 pairs", len(Datasets))
	}
	if _, err := DatasetByName("FL+Yelp"); err != nil {
		t.Fatal(err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset must error")
	}
	for _, spec := range Datasets {
		in, err := spec.Build(Tiny, 3, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := in.Net.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if got := len(in.TSweep()); got != 5 {
			t.Fatalf("%s: %d t values", spec.Name, got)
		}
		r := in.Region(0.01)
		if r.Dim() != 2 {
			t.Fatalf("%s: region dim %d", spec.Name, r.Dim())
		}
	}
}

func TestTable2(t *testing.T) {
	tab, err := Table2(tinyTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	var sb strings.Builder
	tab.Print(&sb)
	if !strings.Contains(sb.String(), "SF+Slashdot") {
		t.Fatal("table missing dataset names")
	}
}

func TestVaryKSmoke(t *testing.T) {
	opts := tinyTestOpts()
	opts.Datasets = []string{"SF+Slashdot"}
	tab, err := VaryK(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(KSweepValues) {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// At least the low-k rows must have measurements.
	found := false
	for _, row := range tab.Rows {
		for _, cell := range row[2:] {
			if cell != "-" && cell != "Inf" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no measurement succeeded: %v", tab.Rows)
	}
}

func TestKTCoreSizesSmoke(t *testing.T) {
	opts := tinyTestOpts()
	opts.Datasets = []string{"SF+Delicious"}
	tab, err := KTCoreSizes(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(KSweepValues) {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestCompareMethodsSmoke(t *testing.T) {
	opts := tinyTestOpts()
	opts.Datasets = []string{"SF+Delicious"}
	tab, err := CompareMethods(opts, "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Header carries all six methods.
	if len(tab.Header) != 8 {
		t.Fatalf("header %v", tab.Header)
	}
}

func TestPartitionsSmoke(t *testing.T) {
	opts := tinyTestOpts()
	opts.Datasets = []string{"SF+Delicious"}
	tab, err := PartitionsAndNCMACs(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(SigmaValues) {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}
