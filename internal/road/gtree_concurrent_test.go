package road

import (
	"math/rand"
	"sync"
	"testing"
)

// concurrentTestGraph builds a random connected road graph with a mix of
// vertex- and edge-located users.
func concurrentTestGraph(t *testing.T, rng *rand.Rand, n int) (*Graph, []Location) {
	t.Helper()
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		if err := g.AddEdge(rng.Intn(v), v, 1+rng.Float64()*9); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < n/2; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if _, ok := g.EdgeWeight(u, v); ok {
			continue
		}
		if err := g.AddEdge(u, v, 1+rng.Float64()*9); err != nil {
			t.Fatal(err)
		}
	}
	locs := make([]Location, 3*n/2)
	for i := range locs {
		locs[i] = VertexLocation(rng.Intn(n))
	}
	// Sprinkle some edge locations.
	g.Edges(func(u, v int, w float64) {
		if rng.Float64() < 0.1 {
			if loc, err := g.EdgeLocation(u, v, w*rng.Float64()); err == nil {
				locs[rng.Intn(len(locs))] = loc
			}
		}
	})
	return g, locs
}

// TestGTreeConcurrentQueries: one GTree must serve many goroutines at once
// (the per-query scratch is pooled, not stored in the index) and agree with
// the plain Dijkstra oracle. Run under -race to verify the claim.
func TestGTreeConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g, locs := concurrentTestGraph(t, rng, 120)
	gt := BuildGTree(g, 16)
	gt.Parallelism = 4 // force the parallel fan-out even on 1-CPU hosts
	ref := RangeQuerier{G: g, Parallelism: 1}

	type job struct {
		queries []Location
		bound   float64
	}
	jobs := make([]job, 24)
	for i := range jobs {
		nq := 1 + rng.Intn(3)
		qs := make([]Location, nq)
		for j := range qs {
			qs[j] = locs[rng.Intn(len(locs))]
		}
		jobs[i] = job{queries: qs, bound: 10 + rng.Float64()*30}
	}
	want := make([][]float64, len(jobs))
	for i, jb := range jobs {
		var err error
		want[i], err = ref.QueryDistances(jb.queries, locs, jb.bound)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, len(jobs)*4)
	for round := 0; round < 4; round++ {
		for i, jb := range jobs {
			wg.Add(1)
			go func(i int, jb job) {
				defer wg.Done()
				got, err := gt.QueryDistances(jb.queries, locs, jb.bound)
				if err != nil {
					errs <- err.Error()
					return
				}
				for u := range got {
					w := want[i][u]
					// Values beyond the bound may legitimately differ (both
					// report "too far" as anything > bound).
					if w > jb.bound && got[u] > jb.bound {
						continue
					}
					if diff := got[u] - w; diff > 1e-9 || diff < -1e-9 {
						errs <- "job mismatch"
						return
					}
				}
			}(i, jb)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestRangeQuerierParallelMatchesSequential: the parallel fan-out over query
// locations must be invisible in the output.
func TestRangeQuerierParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	g, locs := concurrentTestGraph(t, rng, 80)
	for trial := 0; trial < 10; trial++ {
		nq := 1 + rng.Intn(4)
		qs := make([]Location, nq)
		for j := range qs {
			qs[j] = locs[rng.Intn(len(locs))]
		}
		bound := 5 + rng.Float64()*40
		seq, err1 := RangeQuerier{G: g, Parallelism: 1}.QueryDistances(qs, locs, bound)
		par, err2 := RangeQuerier{G: g, Parallelism: 8}.QueryDistances(qs, locs, bound)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("trial %d user %d: %g vs %g", trial, i, seq[i], par[i])
			}
		}
	}
}
